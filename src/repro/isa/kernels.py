"""Multi-threaded kernel suite: real code for the coherence protocol.

Five parameterized kernels, each assembled from source through the
two-pass assembler (:mod:`repro.isa.assembler`) and exercising a
distinct sharing idiom the Piranha protocol has to get right:

* **spinlock** — ``ldq_l``/``stq_c`` test-and-set lock guarding a shared
  counter (contended atomic read-modify-write + lock-line bouncing);
* **barrier** — sense-reversing barrier, N CPUs for R rounds
  (atomic increment + broadcast release, one ``mb`` per round);
* **ring** — producer/consumer pairs message-passing over shared ring
  slots with ``mb``-ordered flag publication (point-to-point
  communication misses, L1→L1 forwarding);
* **memcpy** — per-CPU private block copy using the ``wh64``
  exclusive-without-data write hint (cold misses + write hints, zero
  sharing: a *negative* control for the communication checks);
* **false_sharing** — CPUs hammer distinct quadwords packed into the
  same cache lines (pure false-sharing ping-pong).

Every kernel runs two ways through :func:`run_functional` (interleaved
:class:`~repro.isa.cpu.FunctionalCpu` steps over one
:class:`~repro.isa.cpu.SharedMemory` — the architectural reference) and
:class:`KernelWorkload` (an :class:`~repro.isa.cpu.IsaThread` frontend
through the full event-driven system).  Both end in a final memory
image; :mod:`repro.isa.validate` gates on the two being bit-identical.

The kernels are *determinate*: their final memory image is independent
of interleaving (that is what the locks/barriers/fences are for), which
is what makes the functional-vs-timed comparison exact rather than
statistical.  :func:`run_functional` checks this directly by running
several seeded interleavings and insisting the images agree.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.messages import ReplySource
from .assembler import assemble
from .cpu import FunctionalCpu, IsaThread, SharedMemory

# ---------------------------------------------------------------------------
# shared data layout (everything below 0x8000 so pointers fit lda's
# signed 16-bit displacement; distinct kernels use disjoint regions so a
# combined suite could share one memory)

LOCK_ADDR = 0x4000        # spinlock word (line-aligned)
COUNTER_ADDR = 0x4040     # the counter it guards (its own line)

BAR_COUNT = 0x1000        # barrier arrival counter
BAR_SENSE = 0x1040        # barrier release word (holds completed rounds)
BAR_DONE = 0x1080         # per-CPU final round number, 8*tid (packed)

RING_DATA = 0x2000        # pair p, slot s payload @ +p*slots*64 + s*64
RING_FLAG = 0x2800        # matching full/empty flags, one line per slot
RING_SUM = 0x3000         # per-pair consumer checksum @ +p*64

MEMCPY_SRC = 0x5000       # per-CPU source block @ +tid*lines*64
MEMCPY_DST = 0x6000       # per-CPU destination block @ +tid*lines*64

FS_BASE = 0x7000          # false sharing: quadword tid%8 of line tid//8

_REGION_LIMIT = 0x8000    # lda r, imm(r31) reaches [0, 0x7fff]


@dataclass(frozen=True)
class IsaKernelParams:
    """Parameters for one kernel run.

    ``iterations`` is the per-CPU unit count (lock acquisitions, barrier
    rounds, messages per pair, lines copied, increments — the kernel's
    natural unit), and doubles as the harness ``units_attr``.
    """

    kernel: str = "spinlock"
    iterations: int = 12
    ring_slots: int = 2           # ring: slots per producer/consumer pair
    max_instructions: int = 400_000   # per-CPU cap (spin loops included)


# ---------------------------------------------------------------------------
# kernel program builders: tid -> assembly source


def _spinlock_program(tid: int, nthreads: int, p: IsaKernelParams) -> str:
    return f"""
        lda   r10, {LOCK_ADDR}(r31)
        lda   r11, {COUNTER_ADDR}(r31)
        lda   r12, {p.iterations}(r31)
    again:
    acquire:
        ldq_l r1, 0(r10)
        bne   r1, acquire           ; lock held: spin on the lock line
        lda   r1, 1(r31)
        stq_c r1, 0(r10)
        beq   r1, acquire           ; lost the line: retry
        ldq   r2, 0(r11)            ; critical section
        addq  r2, #1, r2
        stq   r2, 0(r11)
        stq   r31, 0(r10)           ; release
        subq  r12, #1, r12
        bne   r12, again
        halt
    """


def _barrier_program(tid: int, nthreads: int, p: IsaKernelParams) -> str:
    return f"""
        lda   r10, {BAR_COUNT}(r31)
        lda   r11, {BAR_SENSE}(r31)
        lda   r15, {nthreads}(r31)
        lda   r12, {p.iterations}(r31)
        bis   r31, r31, r14         ; completed-rounds counter
    round:
        addq  r14, #1, r14          ; this round's number
    arrive:
        ldq_l r1, 0(r10)
        addq  r1, #1, r2
        bis   r2, r31, r1
        stq_c r1, 0(r10)
        beq   r1, arrive
        cmpeq r2, r15, r3
        bne   r3, last
    spin:
        ldq   r4, 0(r11)            ; wait for this round's release
        cmpeq r4, r14, r5
        beq   r5, spin
        br    next
    last:
        stq   r31, 0(r10)           ; reset arrivals for the next round
        mb                          ; reset must precede the release
        stq   r14, 0(r11)           ; publish round completion
    next:
        subq  r12, #1, r12
        bne   r12, round
        lda   r16, {BAR_DONE + 8 * tid}(r31)
        stq   r14, 0(r16)           ; record my final round
        halt
    """


def _ring_addrs(pair: int, p: IsaKernelParams) -> Tuple[int, int, int]:
    span = p.ring_slots * 64
    data, flag, summ = (RING_DATA + pair * span, RING_FLAG + pair * span,
                        RING_SUM + pair * 64)
    if flag + span > RING_SUM or RING_SUM + (pair + 1) * 64 > LOCK_ADDR:
        raise ValueError(
            f"ring layout overflow: pair {pair} x {p.ring_slots} slots")
    return data, flag, summ


def _ring_producer(pair: int, p: IsaKernelParams) -> str:
    data, flag, _ = _ring_addrs(pair, p)
    return f"""
        lda   r10, {data}(r31)
        lda   r11, {flag}(r31)
        lda   r12, {p.iterations}(r31)
        lda   r18, {p.ring_slots * 64}(r31)
        bis   r31, r31, r14         ; slot byte offset
        lda   r15, {pair + 1}(r31)  ; payload = (pair+1)<<16 | seq
        sll   r15, #16, r15
    send:
        lda   r15, 1(r15)
        addq  r10, r14, r16         ; &data[slot]
        addq  r11, r14, r17         ; &flag[slot]
    full:
        ldq   r1, 0(r17)
        bne   r1, full              ; slot still full: spin
        stq   r15, 0(r16)           ; write the payload
        mb                          ; payload before publication
        lda   r2, 1(r31)
        stq   r2, 0(r17)            ; publish
        lda   r14, 64(r14)
        cmpeq r14, r18, r3
        beq   r3, sent
        bis   r31, r31, r14         ; wrap the ring
    sent:
        subq  r12, #1, r12
        bne   r12, send
        halt
    """


def _ring_consumer(pair: int, p: IsaKernelParams) -> str:
    data, flag, summ = _ring_addrs(pair, p)
    return f"""
        lda   r10, {data}(r31)
        lda   r11, {flag}(r31)
        lda   r12, {p.iterations}(r31)
        lda   r18, {p.ring_slots * 64}(r31)
        lda   r19, {summ}(r31)
        bis   r31, r31, r14         ; slot byte offset
        bis   r31, r31, r20         ; checksum
    recv:
        addq  r10, r14, r16
        addq  r11, r14, r17
    empty:
        ldq   r1, 0(r17)
        beq   r1, empty             ; slot still empty: spin
        mb                          ; acquire: flag before payload
        ldq   r2, 0(r16)
        addq  r20, r2, r20
        mb                          ; payload read before slot release
        stq   r31, 0(r17)           ; mark empty
        lda   r14, 64(r14)
        cmpeq r14, r18, r3
        beq   r3, took
        bis   r31, r31, r14
    took:
        subq  r12, #1, r12
        bne   r12, recv
        stq   r20, 0(r19)           ; publish the checksum
        halt
    """


def _ring_selfpair(pair: int, p: IsaKernelParams) -> str:
    """Degenerate single-CPU pair (odd thread counts / P1): the same
    slot protocol, produced and consumed by one CPU in program order."""
    data, flag, summ = _ring_addrs(pair, p)
    return f"""
        lda   r10, {data}(r31)
        lda   r11, {flag}(r31)
        lda   r12, {p.iterations}(r31)
        lda   r18, {p.ring_slots * 64}(r31)
        lda   r19, {summ}(r31)
        bis   r31, r31, r14
        bis   r31, r31, r20
        lda   r15, {pair + 1}(r31)
        sll   r15, #16, r15
    step:
        lda   r15, 1(r15)
        addq  r10, r14, r16
        addq  r11, r14, r17
        stq   r15, 0(r16)
        mb
        lda   r2, 1(r31)
        stq   r2, 0(r17)
        mb
        ldq   r2, 0(r16)
        addq  r20, r2, r20
        mb
        stq   r31, 0(r17)
        lda   r14, 64(r14)
        cmpeq r14, r18, r3
        beq   r3, next
        bis   r31, r31, r14
    next:
        subq  r12, #1, r12
        bne   r12, step
        stq   r20, 0(r19)
        halt
    """


def _ring_program(tid: int, nthreads: int, p: IsaKernelParams) -> str:
    if nthreads == 1:
        return _ring_selfpair(0, p)
    if tid == nthreads - 1 and nthreads % 2:
        return _ring_selfpair(tid // 2, p)
    if tid % 2 == 0:
        return _ring_producer(tid // 2, p)
    return _ring_consumer(tid // 2, p)


def _memcpy_bounds(tid: int, p: IsaKernelParams) -> Tuple[int, int]:
    src = MEMCPY_SRC + tid * p.iterations * 64
    dst = MEMCPY_DST + tid * p.iterations * 64
    if src + p.iterations * 64 > MEMCPY_DST or \
            dst + p.iterations * 64 > FS_BASE:
        raise ValueError(
            f"memcpy layout overflow: tid {tid} x {p.iterations} lines")
    return src, dst


def _memcpy_program(tid: int, nthreads: int, p: IsaKernelParams) -> str:
    src, dst = _memcpy_bounds(tid, p)
    return f"""
        lda   r1, {src}(r31)
        lda   r2, {dst}(r31)
        lda   r3, {p.iterations}(r31)
    line:
        wh64  0(r2)                 ; take the line without fetching it
        lda   r4, 8(r31)
    qw:
        ldq   r5, 0(r1)
        stq   r5, 0(r2)
        lda   r1, 8(r1)
        lda   r2, 8(r2)
        subq  r4, #1, r4
        bne   r4, qw
        subq  r3, #1, r3
        bne   r3, line
        halt
    """


def _fs_slot(tid: int) -> int:
    addr = FS_BASE + (tid // 8) * 64 + (tid % 8) * 8
    if addr >= _REGION_LIMIT:
        raise ValueError(f"false-sharing layout overflow: tid {tid}")
    return addr


def _false_sharing_program(tid: int, nthreads: int,
                           p: IsaKernelParams) -> str:
    return f"""
        lda   r10, {_fs_slot(tid)}(r31)
        lda   r12, {p.iterations}(r31)
    bump:
        ldq   r1, 0(r10)            ; my own quadword -- but the line is
        addq  r1, #1, r1            ; shared with seven neighbours
        stq   r1, 0(r10)
        subq  r12, #1, r12
        bne   r12, bump
        halt
    """


# ---------------------------------------------------------------------------
# initial memory + architectural postconditions


def _memcpy_pattern(tid: int, qw: int) -> int:
    return ((tid + 1) << 32) + qw + 1


def _memcpy_init(memory: SharedMemory, nthreads: int,
                 p: IsaKernelParams) -> None:
    for tid in range(nthreads):
        src, _ = _memcpy_bounds(tid, p)
        for qw in range(p.iterations * 8):
            memory.store_q(src + qw * 8, _memcpy_pattern(tid, qw))


def _no_init(memory: SharedMemory, nthreads: int,
             p: IsaKernelParams) -> None:
    return None


def _spinlock_check(image: Dict[int, int], nthreads: int,
                    p: IsaKernelParams) -> None:
    total = nthreads * p.iterations
    got = image.get(COUNTER_ADDR, 0)
    assert got == total, (
        f"spinlock lost updates: counter={got}, expected {total}")
    assert LOCK_ADDR not in image, "spinlock left held"


def _barrier_check(image: Dict[int, int], nthreads: int,
                   p: IsaKernelParams) -> None:
    assert image.get(BAR_SENSE, 0) == p.iterations, (
        f"barrier sense={image.get(BAR_SENSE, 0)}, "
        f"expected {p.iterations}")
    assert BAR_COUNT not in image, "barrier arrivals not reset"
    for tid in range(nthreads):
        got = image.get(BAR_DONE + 8 * tid, 0)
        assert got == p.iterations, (
            f"cpu {tid} completed {got}/{p.iterations} rounds")


def _ring_pairs(nthreads: int) -> List[Tuple[int, bool]]:
    """(pair, selfpair) list for a thread count."""
    if nthreads == 1:
        return [(0, True)]
    pairs = [(i, False) for i in range(nthreads // 2)]
    if nthreads % 2:
        pairs.append(((nthreads - 1) // 2, True))
    return pairs


def _ring_check(image: Dict[int, int], nthreads: int,
                p: IsaKernelParams) -> None:
    m = p.iterations
    for pair, _self in _ring_pairs(nthreads):
        base = ((pair + 1) << 16)
        expected = m * base + m * (m + 1) // 2
        _, _, summ = _ring_addrs(pair, p)
        got = image.get(summ, 0)
        assert got == expected, (
            f"ring pair {pair}: checksum {got:#x} != {expected:#x}")
        span = p.ring_slots * 64
        for s in range(p.ring_slots):
            assert RING_FLAG + pair * span + s * 64 not in image, (
                f"ring pair {pair} slot {s} left full")


def _memcpy_check(image: Dict[int, int], nthreads: int,
                  p: IsaKernelParams) -> None:
    for tid in range(nthreads):
        src, dst = _memcpy_bounds(tid, p)
        for qw in range(p.iterations * 8):
            want = _memcpy_pattern(tid, qw)
            assert image.get(src + qw * 8, 0) == want, (
                f"memcpy cpu {tid} source corrupted at qw {qw}")
            assert image.get(dst + qw * 8, 0) == want, (
                f"memcpy cpu {tid} bad copy at qw {qw}")


def _false_sharing_check(image: Dict[int, int], nthreads: int,
                         p: IsaKernelParams) -> None:
    for tid in range(nthreads):
        got = image.get(_fs_slot(tid), 0)
        assert got == p.iterations, (
            f"false-sharing cpu {tid}: slot={got}, "
            f"expected {p.iterations} (lost updates on a private word!)")


@dataclass(frozen=True)
class KernelDef:
    """One kernel: program builder, memory preload, postcondition."""

    name: str
    program: Callable[[int, int, IsaKernelParams], str]
    init_memory: Callable[[SharedMemory, int, IsaKernelParams], None]
    check_final: Callable[[Dict[int, int], int, IsaKernelParams], None]
    uses_llsc: bool
    uses_wh64: bool


KERNELS: Dict[str, KernelDef] = {
    "spinlock": KernelDef("spinlock", _spinlock_program, _no_init,
                          _spinlock_check, uses_llsc=True, uses_wh64=False),
    "barrier": KernelDef("barrier", _barrier_program, _no_init,
                         _barrier_check, uses_llsc=True, uses_wh64=False),
    "ring": KernelDef("ring", _ring_program, _no_init, _ring_check,
                      uses_llsc=False, uses_wh64=False),
    "memcpy": KernelDef("memcpy", _memcpy_program, _memcpy_init,
                        _memcpy_check, uses_llsc=False, uses_wh64=True),
    "false_sharing": KernelDef("false_sharing", _false_sharing_program,
                               _no_init, _false_sharing_check,
                               uses_llsc=False, uses_wh64=False),
}

KERNEL_NAMES = tuple(sorted(KERNELS))


def kernel_programs(kernel: str, nthreads: int,
                    params: IsaKernelParams) -> List[List[int]]:
    """Assemble the per-thread instruction words for one kernel."""
    kdef = KERNELS[kernel]
    return [assemble(kdef.program(tid, nthreads, params))
            for tid in range(nthreads)]


def expected_membars(kernel: str, nthreads: int,
                     params: IsaKernelParams) -> int:
    """Analytic ``mb`` count from the program structure (exact)."""
    m = params.iterations
    if kernel == "barrier":
        return m                       # one per round, by the last arriver
    if kernel == "ring":
        # 1 mb per produce + 2 per consume, selfpair or not
        return 3 * m * len(_ring_pairs(nthreads))
    return 0


def expected_wh64(kernel: str, nthreads: int,
                  params: IsaKernelParams) -> int:
    return nthreads * params.iterations if kernel == "memcpy" else 0


# ---------------------------------------------------------------------------
# memory-image canonicalisation (shared by both execution models)


def memory_image(memory: SharedMemory) -> Dict[int, int]:
    """The non-zero final words, sorted by address.  Zero words are
    dropped on *both* sides of the comparison: the functional model
    materialises explicit zeros (lock releases, wh64 zero-fill) that an
    untouched word is architecturally indistinguishable from."""
    return {addr: value for addr, value in sorted(memory.words.items())
            if value}


def image_digest(image: Dict[int, int]) -> str:
    blob = json.dumps([[addr, value] for addr, value in sorted(image.items())],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# execution model 1: interleaved functional reference


@dataclass
class FunctionalRun:
    """Outcome of one interleaved functional execution."""

    kernel: str
    nthreads: int
    seed: int
    image: Dict[int, int]
    retired: List[int]              # per-tid instructions retired
    stq_c_failures: List[int]       # per-tid failed store-conditionals
    steps: int                      # total interleaved steps taken

    @property
    def digest(self) -> str:
        return image_digest(self.image)


def run_functional(kernel: str, nthreads: int,
                   params: Optional[IsaKernelParams] = None,
                   seed: int = 0) -> FunctionalRun:
    """Run one kernel on ``nthreads`` functional CPUs over one shared
    memory, interleaving them in a seeded pseudo-random order.

    The schedule is round-based — every non-halted CPU takes 1..8 steps
    per round, in a per-round shuffled order — so spin loops always make
    progress while the seed still varies the interleaving enough to
    shake out lost-update bugs.  The architectural postcondition
    (:attr:`KernelDef.check_final`) is asserted before returning.
    """
    params = params or IsaKernelParams(kernel=kernel)
    kdef = KERNELS[kernel]
    memory = SharedMemory()
    kdef.init_memory(memory, nthreads, params)
    cpus = [FunctionalCpu(words, memory, agent=tid)
            for tid, words in
            enumerate(kernel_programs(kernel, nthreads, params))]
    rng = random.Random(seed)
    budget = nthreads * params.max_instructions
    steps = 0
    live = list(range(nthreads))
    while live:
        rng.shuffle(live)
        for tid in list(live):
            for _ in range(rng.randint(1, 8)):
                cpus[tid].step()
                steps += 1
                if cpus[tid].state.halted:
                    break
            if steps > budget:
                raise RuntimeError(
                    f"{kernel}: functional run exceeded "
                    f"{budget} interleaved steps (livelock?)")
        live = [tid for tid in live if not cpus[tid].state.halted]
    image = memory_image(memory)
    kdef.check_final(image, nthreads, params)
    return FunctionalRun(
        kernel=kernel, nthreads=nthreads, seed=seed, image=image,
        retired=[c.state.instructions_retired for c in cpus],
        stq_c_failures=[c.state.stq_c_failures for c in cpus],
        steps=steps)


# ---------------------------------------------------------------------------
# execution model 2: timed workload through the full system


class KernelWorkload:
    """Workload frontend: one kernel across every CPU of the system.

    ``thread_for`` hands each (node, cpu) slot an :class:`IsaThread`
    over a shared functional memory, so the timed run's stores/loads
    interleave in simulated-time order through the real L1/L2/directory
    hierarchy.  ``post_run`` folds the architectural outcome — final
    memory image + digest, per-CPU retirement/``stq_c`` state, protocol
    counters and the exact stall decomposition — into
    ``result.extras["isa"]``, which is JSON-shaped and deterministic, so
    it rides the result cache like any other payload-adjacent document.
    """

    def __init__(self, params: IsaKernelParams, cpus_per_node: int = 8,
                 num_nodes: int = 1) -> None:
        if params.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {params.kernel!r}; "
                f"available: {', '.join(KERNEL_NAMES)}")
        self.params = params
        self.cpus_per_node = cpus_per_node
        self.num_nodes = num_nodes
        self.name = f"isa-{params.kernel}"
        self.ilp = IsaThread.ilp
        self.nthreads = cpus_per_node * num_nodes
        self.memory = SharedMemory()
        KERNELS[params.kernel].init_memory(self.memory, self.nthreads,
                                           params)
        self._words = kernel_programs(params.kernel, self.nthreads, params)
        #: tid -> FunctionalCpu, for post-run architectural inspection
        self.cpus: Dict[int, FunctionalCpu] = {}

    def _tid(self, node: int, cpu: int) -> int:
        return node * self.cpus_per_node + cpu

    def thread_for(self, node: int, cpu: int):
        tid = self._tid(node, cpu)
        if tid >= self.nthreads:
            return None
        from ..workloads.base import WorkloadThread

        fcpu = FunctionalCpu(self._words[tid], self.memory, agent=tid,
                             code_base=0x7000_0000 + tid * 0x1000)
        self.cpus[tid] = fcpu
        thread = IsaThread(fcpu,
                           max_instructions=self.params.max_instructions)
        return WorkloadThread(iter(thread), ilp=self.ilp, name=thread.name)

    # -- post-run architectural audit -------------------------------------

    def post_run(self, system, result) -> None:
        for tid in sorted(self.cpus):
            state = self.cpus[tid].state
            if not state.halted:
                raise RuntimeError(
                    f"{self.name}: cpu {tid} did not reach halt "
                    f"(pc={state.pc}, "
                    f"retired={state.instructions_retired})")
        image = memory_image(self.memory)
        counters = system.sample_counters()
        stall = {src.name.lower(): int(sum(
            cpu.stall_ps[src] for cpu in system.all_cpus()))
            for src in ReplySource}
        stall["fence"] = int(sum(
            cpu.fence_stall_ps for cpu in system.all_cpus()))
        result.extras["isa"] = {
            "kernel": self.params.kernel,
            "nthreads": self.nthreads,
            "mem_digest": image_digest(image),
            "mem_image": {f"{addr:#x}": value
                          for addr, value in image.items()},
            "cpus": {
                str(tid): {
                    "retired": self.cpus[tid].state.instructions_retired,
                    "stq_c_failures": self.cpus[tid].state.stq_c_failures,
                    "halted": self.cpus[tid].state.halted,
                }
                for tid in sorted(self.cpus)
            },
            "counters": {
                key: int(counters[key])
                for key in ("instructions", "l1_lookups", "l1_hits",
                            "l1_upgrades", "l2_requests", "l2_hits",
                            "l2_fwds", "l2_upgrades", "l2_local_mem",
                            "l2_remote_mem", "l2_remote_dirty",
                            "packets_sent")
            },
            "wh64_issued": int(sum(
                cpu.c_wh64.value for cpu in system.all_cpus())),
            "membars": int(sum(
                cpu.c_membar.value for cpu in system.all_cpus())),
            "stall_ps": stall,
        }


@dataclass(frozen=True)
class IsaKernelFactory:
    """Picklable, cache-tokenable factory for the harness/sweep paths.

    The frozen-dataclass repr is the workload token
    (:func:`repro.harness.cache.workload_token`), so every kernel and
    parameter choice lands in the memo and disk cache keys for free —
    the same folding discipline as every prior subsystem.
    """

    params: Optional[IsaKernelParams] = None

    def __call__(self, config, num_nodes: int) -> KernelWorkload:
        params = self.params
        if params is None:
            from ..harness.runner import scale_factor

            params = scaled_params("spinlock", scale_factor())
        return KernelWorkload(params, cpus_per_node=config.cpus,
                              num_nodes=num_nodes)


def scaled_params(kernel: str, scale: float = 1.0) -> IsaKernelParams:
    """REPRO_SCALE-aware defaults: enough iterations per CPU that the
    sharing pattern dominates cold-start, small enough that a 32-CPU
    timed run stays interactive."""
    base = {"spinlock": 8, "barrier": 6, "ring": 12, "memcpy": 8,
            "false_sharing": 24}[kernel]
    return IsaKernelParams(kernel=kernel,
                           iterations=max(2, int(base * scale)))
