"""Section 2.5.3: cruise-missile invalidates.

CMI bounds the messages one request injects (at most four) — the basis of
Piranha's size-independent 128-header buffering bound — and the paper's
studies showed it can also *beat* the conventional scheme's invalidation
latency by avoiding the injection/gather serialisation at the home and
requester.  This benchmark sweeps sharer-set sizes on a 1K-node-class
topology and regenerates both results.
"""

from repro.interconnect import (
    buffering_bound,
    cmi_latency,
    fanout_latency,
    fanout_messages,
    mesh2d,
    plan_cmi,
)
from repro.harness import format_table

HOP_NS = 8.0
VISIT_NS = 10.0
INJECT_NS = 6.0
GATHER_NS = 6.0


def sweep():
    topo = mesh2d(8, 8)
    rows = []
    for n_sharers in (2, 4, 8, 16, 32, 63):
        sharers = list(range(1, n_sharers + 1))
        plan = plan_cmi(topo, home=0, requester=0, sharers=sharers)
        t_cmi = cmi_latency(topo, plan, HOP_NS, VISIT_NS)
        t_fan = fanout_latency(topo, 0, 0, sharers, HOP_NS, VISIT_NS,
                               INJECT_NS, GATHER_NS)
        injected_fan, _ = fanout_messages(sharers, 0)
        rows.append({
            "sharers": n_sharers,
            "cmi_messages": plan.messages_injected,
            "fanout_messages": injected_fan,
            "cmi_ns": t_cmi,
            "fanout_ns": t_fan,
        })
    return rows


def test_cmi(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(format_table(
        ["sharers", "CMI msgs", "fan-out msgs", "CMI ns", "fan-out ns"],
        [[r["sharers"], r["cmi_messages"], r["fanout_messages"],
          f"{r['cmi_ns']:.0f}", f"{r['fanout_ns']:.0f}"] for r in rows],
        title="Section 2.5.3: CMI vs conventional invalidation fan-out"))
    print(f"\n  per-node buffering bound: {buffering_bound()} message "
          f"headers (2 engines x 16 TSRFs x 4 invalidations)")

    for r in rows:
        # the bound that makes buffering size-independent
        assert r["cmi_messages"] <= 4
    # conventional injection grows linearly; CMI stays flat
    assert rows[-1]["fanout_messages"] == 63
    assert rows[-1]["cmi_messages"] == 4
    # latency advantage appears for large sharer sets
    big = rows[-1]
    assert big["cmi_ns"] < big["fanout_ns"]
    assert buffering_bound() == 128
