"""Figure 6(b): L1-miss service breakdown vs on-chip CPU count (OLTP).

The paper's trends: the L2-hit share falls from ~90% at one CPU to under
40% at eight, the share served by *other on-chip L1s* (L2 Fwd) grows to
roughly half, and the share that goes to memory stays roughly constant at
under 20% past a single CPU — the non-inclusive hierarchy keeps the
growing working set on chip.
"""

from repro.harness import figure6b, format_table


def test_figure6b(benchmark):
    fig = benchmark.pedantic(figure6b, rounds=1, iterations=1)

    rows = []
    for n in (1, 2, 4, 8):
        m, p = fig["measured"][n], fig["paper"][n]
        rows.append([
            f"P{n}",
            f"{m['hit']:.2f} / {p['hit']:.2f}",
            f"{m['fwd']:.2f} / {p['fwd']:.2f}",
            f"{m['mem']:.2f} / {p['mem']:.2f}",
        ])
    print()
    print(format_table(
        ["config", "L2 hit (meas/paper)", "L2 fwd (meas/paper)",
         "L2 miss (meas/paper)"],
        rows, title="Figure 6b: L1-miss breakdown"))

    m = fig["measured"]
    # hits fall monotonically as CPUs are added
    assert m[1]["hit"] > m[2]["hit"] > m[4]["hit"] > m[8]["hit"]
    # forwards grow from zero
    assert m[1]["fwd"] == 0.0
    assert m[2]["fwd"] < m[8]["fwd"]
    # P1 serves ~90% of misses on chip, ~10% from memory
    assert m[1]["hit"] >= 0.85
    assert m[1]["mem"] <= 0.15
    # memory share stays roughly flat and under 20% past one CPU
    for n in (2, 4, 8):
        assert m[n]["mem"] < 0.20
    assert abs(m[8]["mem"] - m[2]["mem"]) < 0.10
