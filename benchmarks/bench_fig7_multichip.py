"""Figure 7: OLTP speedup in multi-chip (NUMA) systems.

1 to 4 chips of 4-CPU Piranha nodes versus 1 to 4 OOO chips.  The paper
reports Piranha scaling *better* (3.0x at four chips) than OOO (2.6x)
despite its four-fold CPU count — on-chip communication offsets the
OS/contention overheads of more CPUs — and a single-chip P4 about 1.5x an
OOO chip.
"""

from repro.harness import figure7, paper_vs_measured, series


def test_figure7(benchmark):
    fig = benchmark.pedantic(figure7, rounds=1, iterations=1)

    print()
    print(series("Piranha (P4/chip) speedup", fig["piranha_speedups"]))
    print(series("OOO speedup              ", fig["ooo_speedups"]))
    print(paper_vs_measured("Figure 7", [
        ("Piranha speedup at 4 chips", fig["paper"]["piranha_4chip"],
         fig["piranha_speedups"][4]),
        ("OOO speedup at 4 chips", fig["paper"]["ooo_4chip"],
         fig["ooo_speedups"][4]),
        ("single-chip P4 / OOO", fig["paper"]["single_chip_ratio"],
         fig["single_chip_ratio"]),
    ]))

    ps, os_ = fig["piranha_speedups"], fig["ooo_speedups"]
    # both scale; Piranha scales at least as well as OOO
    assert ps[1] == 1.0 and os_[1] == 1.0
    assert ps[2] > 1.3 and ps[4] > ps[2]
    assert os_[4] > os_[2] > 1.2
    assert 2.5 <= ps[4] <= 3.8
    assert 2.1 <= os_[4] <= 3.3
    assert ps[4] >= os_[4] * 0.95  # Piranha on par or better (paper: better)
    # per-chip advantage holds at every system size
    assert 1.3 <= fig["single_chip_ratio"] <= 2.1
