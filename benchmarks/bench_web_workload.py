"""Section 6: web-server / search workloads.

'Previous studies have shown that some web server applications, such as
the AltaVista search engine, exhibit behavior similar to decision support
(DSS) workloads.'  The benchmark runs the search model on P8 and OOO and
checks it lands in DSS's regime: busy-dominated, with a Piranha advantage
close to the DSS factor (~2.3x) rather than the OLTP one (~2.9x).
"""

import pytest

from repro.core import PiranhaSystem, preset
from repro.harness import format_table, paper_vs_measured, scale_factor
from repro.workloads.web import WebParams, WebWorkload


def run(config_name: str):
    scale = scale_factor()
    params = WebParams(queries=max(50, int(150 * scale)),
                       warmup_queries=max(20, int(40 * scale)))
    config = preset(config_name)
    system = PiranhaSystem(config, num_nodes=1)
    system.attach_workload(WebWorkload(params, cpus_per_node=config.cpus))
    system.run_to_completion()
    per_cpu = max(c.total_ps for c in system.all_cpus())
    summary = system.execution_summary()
    return {
        "throughput": config.cpus * 1e12 / (per_cpu / params.queries),
        "busy_frac": summary["busy_ps"] / summary["total_ps"],
    }


def experiment():
    return {name: run(name) for name in ("P1", "P8", "OOO")}


def test_web_is_dss_shaped(benchmark):
    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    p8_over_ooo = results["P8"]["throughput"] / results["OOO"]["throughput"]
    p8_over_p1 = results["P8"]["throughput"] / results["P1"]["throughput"]
    print()
    print(format_table(
        ["config", "busy fraction", "throughput vs P1"],
        [[n, f"{r['busy_frac']:.2f}",
          f"{r['throughput'] / results['P1']['throughput']:.2f}"]
         for n, r in results.items()],
        title="Section 6: search/web workload"))
    print(paper_vs_measured("Web ~ DSS", [
        ("P8 / OOO", "~2.3 (DSS-like)", p8_over_ooo),
        ("busy-dominated", "> 0.7", results["P8"]["busy_frac"]),
    ]))

    # DSS-shaped: busy-dominated, near-linear CMP scaling, a P8 advantage
    # in DSS's band rather than OLTP's
    assert results["P8"]["busy_frac"] > 0.65
    assert 6.5 <= p8_over_p1 <= 8.2
    assert 1.7 <= p8_over_ooo <= 2.9
