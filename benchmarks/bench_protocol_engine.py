"""Section 2.5.1: protocol-engine occupancy and microcode economy.

The paper argues the specialised microcoded engines achieve much lower
latency and occupancy than a general-purpose protocol processor (FLASH):
typical transactions take only a few instructions per engine (a remote
read costs four at the requester's remote engine), and the whole protocol
fits in ~hundreds of the 1024 microstore words.  This benchmark measures
engine behaviour under a multi-node OLTP run.
"""

import pytest

from repro.core import CoherenceChecker, PiranhaSystem, preset
from repro.core.microprograms import build_home_program, build_remote_program
from repro.harness import format_table, scale_factor
from repro.workloads import OltpParams, OltpWorkload


def run_multinode():
    scale = scale_factor()
    params = OltpParams(
        transactions=max(15, int(40 * scale)),
        warmup_transactions=max(20, int(60 * scale)),
    )
    system = PiranhaSystem(preset("P4"), num_nodes=2)
    system.attach_workload(
        OltpWorkload(params, cpus_per_node=4, num_nodes=2))
    system.run_to_completion()

    stats = {"per_node": []}
    for node in system.nodes:
        for engine in (node.home_engine, node.remote_engine):
            threads = engine.c_threads.value
            instrs = engine.c_instructions.value
            stats["per_node"].append({
                "engine": engine.name,
                "threads": threads,
                "instructions": instrs,
                "instr_per_thread": instrs / threads if threads else 0.0,
                "tsrf_high_water": engine.tsrf.high_water,
                "tsrf_stalls": engine.c_tsrf_stalls.value,
            })
    remote = build_remote_program()
    home = build_home_program()
    stats["microstore"] = {
        "remote_words": remote.words_used,
        "home_words": home.words_used,
        "capacity": 1024,
    }
    return stats


def test_engine_occupancy(benchmark):
    stats = benchmark.pedantic(run_multinode, rounds=1, iterations=1)

    print()
    print(format_table(
        ["engine", "threads", "instrs", "instrs/thread", "TSRF peak",
         "TSRF stalls"],
        [[e["engine"], e["threads"], e["instructions"],
          f"{e['instr_per_thread']:.1f}", e["tsrf_high_water"],
          e["tsrf_stalls"]]
         for e in stats["per_node"]],
        title="Section 2.5.1: protocol-engine occupancy (2-node OLTP)"))
    ms = stats["microstore"]
    print(f"\n  microstore: remote={ms['remote_words']} "
          f"home={ms['home_words']} of {ms['capacity']} words")

    busy = [e for e in stats["per_node"] if e["threads"] > 0]
    assert busy, "no engine saw traffic"
    for e in busy:
        # a handful of instructions per transaction, not hundreds
        # (the FLASH comparison: low occupancy is the point)
        assert e["instr_per_thread"] < 20
        # 16 TSRF entries were enough most of the time
        assert e["tsrf_high_water"] <= 16
    assert ms["remote_words"] < 1024 and ms["home_words"] < 1024
