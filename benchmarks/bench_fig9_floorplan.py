"""Figure 9 / Section 5: floor-plan area budget of the processing node.

Roughly 75% of the Piranha processing node is the Alpha cores and the
L1/L2 caches; the rest is memory controllers, intra-chip interconnect,
router and protocol engines.
"""

from repro.area import floorplan_summary
from repro.core import PIRANHA_P8
from repro.harness import format_table, paper_vs_measured


def test_figure9(benchmark):
    summary = benchmark.pedantic(floorplan_summary, args=(PIRANHA_P8,),
                                 rounds=1, iterations=1)

    rows = [[m.name, m.count, f"{m.area_mm2:.1f}", f"{m.total_mm2:.1f}"]
            for m in summary["modules"]]
    print()
    print(format_table(["module", "count", "mm^2 each", "mm^2 total"], rows,
                       title="Figure 9: Piranha processing-node floor-plan"))
    print()
    print(paper_vs_measured("Area budget", [
        ("cores + caches fraction", 0.75,
         summary["cores_and_caches_fraction"]),
    ]))

    assert 0.70 <= summary["cores_and_caches_fraction"] <= 0.85
    groups = summary["by_group_mm2"]
    assert groups["cache"] > groups["cpu"]  # SRAM dominates simple cores
