"""Section 4 robustness check: a TPC-C-like workload.

'Using a workload modeled after the TPC-C benchmark, our results showed
that P8 outperforms OOO by over a factor of 3 times.'
"""

from repro.harness import paper_vs_measured, tpcc_sensitivity


def test_tpcc(benchmark):
    result = benchmark.pedantic(tpcc_sensitivity, rounds=1, iterations=1)

    print()
    print(paper_vs_measured("TPC-C sensitivity", [
        ("P8 / OOO (TPC-C)", "> 3.0", result["p8_over_ooo"]),
    ]))

    assert result["p8_over_ooo"] > 2.8
    assert result["p8_over_ooo"] < 4.5  # sanity: not wildly off
