"""Figure 5: single-chip performance, Piranha vs a 1 GHz out-of-order chip.

Regenerates the normalised execution-time bars (OOO = 100) with the
CPU-busy / L2-hit / L2-miss breakdown for P1, OOO, INO and P8 on both OLTP
and DSS, and checks the paper's headline factors:

* OOO outperforms P1 by ~2.3x (OLTP); INO accounts for ~1.6x of that;
* the eight-CPU Piranha outperforms OOO by ~2.9x on OLTP, ~2.3x on DSS.
"""

import pytest

from repro.harness import breakdown_bar, figure5, paper_vs_measured


@pytest.mark.parametrize("workload", ["oltp", "dss"])
def test_figure5(benchmark, workload):
    fig = benchmark.pedantic(figure5, args=(workload,), rounds=1, iterations=1)

    print()
    print(f"Figure 5 ({workload.upper()}): normalised execution time "
          f"(OOO = 100)")
    for name in ("P1", "INO", "OOO", "P8"):
        r = fig["results"][name]
        norm = fig["normalized"][name]
        bar = breakdown_bar(f"{name} ({norm:5.0f})", r.busy_frac * norm,
                            r.l2_frac * norm, r.mem_frac * norm)
        print("  " + bar)
    rows = [
        (f"{name} normalised time", fig["paper"][name],
         fig["normalized"][name])
        for name in ("P1", "INO", "OOO", "P8")
    ]
    rows.append(("P8 speedup over OOO (per chip)",
                 {"oltp": 2.9, "dss": 2.3}[workload],
                 fig["speedup_p8_over_ooo"]))
    print(paper_vs_measured(f"Figure 5 {workload}", rows))

    # shape assertions (generous bands: the substrate is synthetic)
    if workload == "oltp":
        assert 2.0 <= fig["speedup_ooo_over_p1"] <= 2.8
        assert 1.4 <= fig["speedup_ino_over_p1"] <= 1.8
        assert 2.4 <= fig["speedup_p8_over_ooo"] <= 3.7
    else:
        assert 3.0 <= fig["speedup_ooo_over_p1"] <= 4.6
        assert 1.6 <= fig["speedup_ino_over_p1"] <= 2.2
        assert 1.9 <= fig["speedup_p8_over_ooo"] <= 2.8
    # P8 wins on both workloads; the win is bigger on OLTP (checked by the
    # bands above); breakdowns are sane
    for r in fig["results"].values():
        assert r.busy_frac + r.l2_frac + r.mem_frac == pytest.approx(1.0)
