"""Table 1: parameters of the P8 / OOO / P8F processor designs.

Regenerates the table from the configuration presets and checks the
latency compositions reproduce the paper's values.
"""

from repro.harness import format_table, table1_parameters


def test_table1(benchmark):
    table = benchmark.pedantic(table1_parameters, rounds=1, iterations=1)

    rows = []
    params = list(next(iter(table.values())).keys())
    for param in params:
        rows.append([param] + [table[c][param] for c in ("P8", "OOO", "P8F")])
    print()
    print(format_table(
        ["Parameter", "Piranha (P8)", "Next-gen (OOO)", "Full-custom (P8F)"],
        rows, title="Table 1: parameters for the different processor designs"))

    assert table["P8"]["L2 Hit / L2 Fwd Latency"] == "16 ns / 24 ns"
    assert table["P8F"]["L2 Hit / L2 Fwd Latency"] == "12 ns / 16 ns"
    assert all(table[c]["Local Memory Latency"] == "80 ns"
               for c in ("P8", "OOO", "P8F"))
    assert all(table[c]["Remote Memory Latency"] == "120 ns"
               for c in ("P8", "OOO", "P8F"))
