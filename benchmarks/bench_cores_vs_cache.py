"""Section 4 design-space note: trading CPUs for a larger L2.

'Since the fraction of L2 miss stall time is relatively small, the
improvement from even an infinite L2 would be modest.  Moreover, since
Piranha CPUs are small, relatively little SRAM can be added per CPU
removed.  As a result, such a trade-off does not seem advantageous.'

The sweep compares the stock P8 against variants that give up CPUs for
proportionally more L2, on OLTP throughput per chip.
"""

import dataclasses

import pytest

from repro.core import preset
from repro.harness import OltpFactory, format_table, run_jobs, scale_factor
from repro.harness.parallel import Job
from repro.workloads import OltpParams


def _variant_config(cpus: int, l2_kb: int):
    config = preset("P8").with_cpus(cpus, f"P{cpus}-{l2_kb}KB")
    return dataclasses.replace(
        config, l2=dataclasses.replace(config.l2, size_bytes=l2_kb * 1024))


def sweep():
    # a Piranha core + L1s is worth very roughly 128 KB of ASIC SRAM
    variants = [(8, 1024), (6, 1280), (4, 1536)]
    scale = scale_factor()
    params = OltpParams(
        transactions=max(20, int(60 * scale)),
        warmup_transactions=max(30, int(100 * scale)),
    )
    # independent points: fan out via the parallel/cached harness
    results = run_jobs([
        Job(config=_variant_config(cpus, kb), factory=OltpFactory(params))
        for cpus, kb in variants
    ])
    return {key: r.throughput for key, r in zip(variants, results)}


def test_cores_beat_cache(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = results[(8, 1024)]
    print()
    print(format_table(
        ["CPUs", "L2 (KB)", "OLTP throughput vs P8"],
        [[cpus, kb, f"{tput / base:.2f}"]
         for (cpus, kb), tput in results.items()],
        title="Section 4: trading CPUs for L2 capacity (OLTP)"))

    # the stock 8-CPU chip beats every trade-down
    for (cpus, kb), tput in results.items():
        if cpus < 8:
            assert tput < base
