"""Section 2.3 ablations: the non-inclusive L2 and the ownership filter.

Quantifies the design choices the paper calls out:

* **non-inclusion A/B**: the same P8 chip simulated with a conventional
  inclusive L2 ("maintaining data inclusion in our 1MB L2 can potentially
  waste its full capacity with duplicate data") — the non-inclusive design
  must win on OLTP throughput and memory-miss share;
* **duplication**: under non-inclusion almost no line is duplicated
  between the L1s and the L2;
* **ownership-filtered write-backs**: among L1 replacements, only the
  owner's replacement writes back to the L2 — non-owner replacements are
  silent.
"""

import dataclasses

import pytest

from repro.core import CoherenceChecker, PiranhaSystem, preset
from repro.harness import format_table, paper_vs_measured, scale_factor
from repro.workloads import OltpParams, OltpWorkload


def run_p8(inclusive=False):
    scale = scale_factor()
    params = OltpParams(
        transactions=max(20, int(60 * scale)),
        warmup_transactions=max(30, int(100 * scale)),
    )
    config = preset("P8")
    if inclusive:
        config = dataclasses.replace(
            config, l2=dataclasses.replace(config.l2, inclusive=True))
    system = PiranhaSystem(config, num_nodes=1)
    system.attach_workload(OltpWorkload(params, cpus_per_node=8))
    system.run_to_completion()

    node = system.nodes[0]
    l1_lines = set()
    for l1 in node.l1i + node.l1d:
        for s in l1.sets:
            for tag in s:
                l1_lines.add(tag)
    l2_lines = set()
    for bank in node.banks:
        for s in bank.sets:
            for tag in s:
                l2_lines.add(tag)
    duplicated = len(l1_lines & l2_lines)
    filtered = sum(b.c_l1_evict_clean.value for b in node.banks)
    written_back = sum(b.c_l1_wb_owner.value for b in node.banks)
    return {
        "l1_lines": len(l1_lines),
        "l2_lines": len(l2_lines),
        "duplicated": duplicated,
        "duplication_fraction": duplicated / max(1, len(l2_lines)),
        "filtered_replacements": filtered,
        "owner_writebacks": written_back,
        "on_chip_bytes": node.on_chip_resident_bytes(),
        "time_per_txn_ns": max(c.total_ps for c in system.all_cpus())
                           / params.transactions / 1000.0,
        "mem_miss_frac": (
            sum(b.miss_breakdown()["l2_miss"] for b in node.banks)
            / max(1, sum(sum(b.miss_breakdown().values())
                         for b in node.banks))
        ),
    }


def ab_comparison():
    return {"noninclusive": run_p8(False), "inclusive": run_p8(True)}


def test_noninclusion(benchmark):
    ab = benchmark.pedantic(ab_comparison, rounds=1, iterations=1)
    stats = ab["noninclusive"]
    incl = ab["inclusive"]

    print()
    print(format_table(["metric", "value"], [
        ["distinct lines in L1s", stats["l1_lines"]],
        ["lines in L2", stats["l2_lines"]],
        ["duplicated (in both)", stats["duplicated"]],
        ["L2 duplication fraction", f"{stats['duplication_fraction']:.3f}"],
        ["owner write-backs", stats["owner_writebacks"]],
        ["filtered (silent) replacements", stats["filtered_replacements"]],
        ["on-chip resident bytes", stats["on_chip_bytes"]],
    ], title="Section 2.3: non-inclusion + ownership-filter ablation"))

    # Non-inclusion: an inclusive hierarchy would have EVERY L1 line
    # duplicated in the L2 (duplication fraction near aggregate-L1/L2);
    # Piranha's is a small residue of in-flight transitions.
    assert stats["duplication_fraction"] < 0.25
    # The victim L2 holds a meaningful working set of its own
    assert stats["l2_lines"] > 1000
    # The ownership filter suppresses a visible share of write-backs
    total = stats["filtered_replacements"] + stats["owner_writebacks"]
    assert stats["filtered_replacements"] / total > 0.05
    # aggregate on-chip contents exceed the 1 MB L2 alone
    assert stats["on_chip_bytes"] > 1024 * 1024
    # A/B: the paper's design point beats the inclusive alternative
    speedup = incl["time_per_txn_ns"] / stats["time_per_txn_ns"]
    print(f"\n  inclusive-L2 ablation: non-inclusion is {speedup:.2f}x "
          f"faster on OLTP (memory-miss share "
          f"{stats['mem_miss_frac']:.2f} vs {incl['mem_miss_frac']:.2f})")
    assert speedup > 1.1
    assert incl["mem_miss_frac"] > stats["mem_miss_frac"] * 1.5
