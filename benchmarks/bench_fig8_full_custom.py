"""Figure 8: potential of a full-custom Piranha (P8F).

A 1.25 GHz full-custom implementation extends Piranha's per-chip advantage
over the out-of-order baseline to ~5.0x on OLTP and ~5.3x on DSS (DSS
gains more because it is dominated by CPU busy time, which the 2.5x clock
boost attacks directly).
"""

from repro.harness import figure8, paper_vs_measured


def test_figure8(benchmark):
    fig = benchmark.pedantic(figure8, rounds=1, iterations=1)

    print()
    rows = []
    for wl in ("oltp", "dss"):
        rows.append((f"P8F / OOO ({wl})", fig[wl]["paper_p8f_over_ooo"],
                     fig[wl]["p8f_over_ooo"]))
        rows.append((f"P8  / OOO ({wl})",
                     {"oltp": 2.9, "dss": 2.3}[wl],
                     fig[wl]["p8_over_ooo"]))
    print(paper_vs_measured("Figure 8", rows))

    assert 4.2 <= fig["oltp"]["p8f_over_ooo"] <= 6.2
    assert 4.4 <= fig["dss"]["p8f_over_ooo"] <= 6.4
    # full custom beats the ASIC prototype on both workloads
    for wl in ("oltp", "dss"):
        assert fig[wl]["p8f_over_ooo"] > fig[wl]["p8_over_ooo"]
    # DSS benefits relatively more from the clock boost than OLTP
    dss_gain = fig["dss"]["p8f_over_ooo"] / fig["dss"]["p8_over_ooo"]
    oltp_gain = fig["oltp"]["p8f_over_ooo"] / fig["oltp"]["p8_over_ooo"]
    assert dss_gain > oltp_gain
