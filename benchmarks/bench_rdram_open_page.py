"""Section 2.4: memory-controller open-page policy.

'Our simulations show that keeping pages open for about 1 microsecond will
yield a hit rate of over 50% on workloads such as OLTP.'  This benchmark
sweeps the keep-open window under the OLTP address stream and regenerates
that claim.
"""

import dataclasses

import pytest

from repro.core import PiranhaSystem, preset
from repro.harness import format_table, scale_factor
from repro.workloads import OltpParams, OltpWorkload


def run_with_keep_open(keep_open_ns: float) -> float:
    scale = scale_factor()
    params = OltpParams(
        transactions=max(20, int(60 * scale)),
        warmup_transactions=max(30, int(100 * scale)),
        # include the DB-writer's sequential block traffic: OLTP's DRAM
        # stream is transactions' random rows *plus* these bursts, and the
        # bursts are where the open-page locality lives
        block_io_lines_per_txn=48,
    )
    config = preset("P8")
    config = dataclasses.replace(
        config,
        memory=dataclasses.replace(config.memory,
                                   page_keep_open_ns=keep_open_ns),
    )
    system = PiranhaSystem(config, num_nodes=1)
    system.attach_workload(OltpWorkload(params, cpus_per_node=8))
    system.run_to_completion()
    hits = sum(mc.channel.c_page_hits.value for mc in system.nodes[0].mcs)
    accesses = sum(mc.channel.c_accesses.value for mc in system.nodes[0].mcs)
    return hits / accesses if accesses else 0.0


def sweep():
    return {ns: run_with_keep_open(ns)
            for ns in (0.0, 100.0, 500.0, 1000.0, 4000.0)}


def test_open_page_hit_rate(benchmark):
    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(format_table(
        ["keep-open (ns)", "OLTP page-hit rate"],
        [[k, f"{v:.2f}"] for k, v in rates.items()],
        title="Section 2.4: open-page hit rate vs keep-open window"))

    # The paper: ~1 us keep-open -> over 50% page hits on OLTP.  Our
    # synthetic stream carries less block-level temporal locality than
    # Oracle's buffer cache, so the measured rate lands near 40% at 1 us
    # (see EXPERIMENTS.md); the *shape* — a sharp knee just below 1 us,
    # since the scan stride revisits a channel page every ~0.5-0.7 us,
    # and an order-of-magnitude win over closed pages — reproduces.
    assert rates[1000.0] > 0.30
    assert rates[1000.0] > 10 * max(rates[0.0], 0.01)
    # hit rate grows monotonically with the window
    values = list(rates.values())
    assert all(a <= b + 0.02 for a, b in zip(values, values[1:]))
    # closing pages immediately forfeits nearly all hits
    assert rates[0.0] < 0.10
