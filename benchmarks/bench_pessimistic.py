"""Section 4 sensitivity: pessimistic Piranha design parameters.

400 MHz CPUs, 32 KB one-way L1s, and 22 ns / 32 ns L2 latencies: the paper
reports execution time increasing by 29% while Piranha still holds a 2.25x
advantage over OOO on OLTP.
"""

from repro.harness import paper_vs_measured, pessimistic_sensitivity


def test_pessimistic(benchmark):
    result = benchmark.pedantic(pessimistic_sensitivity, rounds=1,
                                iterations=1)

    print()
    print(paper_vs_measured("Pessimistic parameters", [
        ("execution-time increase", f"{result['paper_exec_time_increase']:.0%}",
         f"{result['exec_time_increase']:.0%}"),
        ("pessimistic P8 / OOO", result["paper_pess_over_ooo"],
         result["pess_over_ooo"]),
    ]))

    # execution time gets meaningfully worse but Piranha clearly still wins
    assert 0.15 <= result["exec_time_increase"] <= 0.70
    assert result["pess_over_ooo"] >= 1.8
