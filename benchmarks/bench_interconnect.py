"""Section 2.6: interconnect building blocks under load.

Measures (a) router saturation behaviour on uniform-random traffic —
aggregate delivered bandwidth approaching the per-link serialisation
limit — and (b) the DC-balanced encoder's throughput-critical encode path
(exercised per 16-bit word on every channel in hardware; here the model's
hot path).
"""

import pytest

from repro.interconnect import (
    Packet,
    PacketType,
    build_routers,
    decode,
    encode,
    mesh2d,
)
from repro.sim import Simulator, substream


def run_uniform_traffic(packets_per_node=60):
    sim = Simulator()
    topo = mesh2d(4, 4)
    routers = build_routers(sim, topo, iq_capacity=256, oq_capacity=128)
    delivered = []
    for n in topo.nodes:
        routers[n].iq.set_default_disposition(
            lambda p, n=n: delivered.append((n, sim.now)) or True)
    rng = substream(77, "traffic")
    for src in topo.nodes:
        for _ in range(packets_per_node):
            dst = rng.randrange(16)
            while dst == src:
                dst = rng.randrange(16)
            routers[src].inject(
                Packet(PacketType.READ, src=src, dst=dst))
    sim.run()
    latencies = [t for _, t in delivered]
    return {
        "delivered": len(delivered),
        "injected": 16 * packets_per_node,
        "finish_ns": sim.now / 1000.0,
        "misroutes": sum(r.c_misroutes.value for r in routers.values()),
    }


def test_router_under_load(benchmark):
    stats = benchmark.pedantic(run_uniform_traffic, rounds=1, iterations=1)

    print()
    print(f"  uniform traffic: {stats['delivered']}/{stats['injected']} "
          f"delivered in {stats['finish_ns']:.0f} ns "
          f"({stats['misroutes']} hot-potato misroutes)")

    assert stats["delivered"] == stats["injected"]  # nothing lost
    # aggregate throughput: 960 short packets through a 4x4 mesh within a
    # few microseconds
    assert stats["finish_ns"] < 5000


def test_encoder_throughput(benchmark):
    """Encode+decode a frame's worth of words (the per-packet work)."""

    def frame():
        out = 0
        for value in range(40):
            out ^= decode(encode(value * 991 % (1 << 18), value & 1))[0]
        return out

    result = benchmark(frame)
    assert isinstance(result, int)
