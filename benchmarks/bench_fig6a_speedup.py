"""Figure 6(a): Piranha's OLTP speedup vs number of on-chip CPUs.

The paper reports a speedup of nearly seven with eight CPUs, driven by the
abundant thread-level parallelism of OLTP, the tight on-chip coupling
through the shared L2, and the effectiveness of the non-inclusive caches.
"""

from repro.harness import figure6a, paper_vs_measured, series


def test_figure6a(benchmark):
    fig = benchmark.pedantic(figure6a, rounds=1, iterations=1)

    print()
    print(series("Piranha OLTP speedup (measured)", fig["speedups"]))
    print(series("Piranha OLTP speedup (paper)   ", fig["paper"]))
    print(paper_vs_measured("Figure 6a", [
        (f"speedup at {n} CPUs", fig["paper"][n], fig["speedups"][n])
        for n in (1, 2, 4, 8)
    ]))

    s = fig["speedups"]
    # monotone scaling with near-seven at eight CPUs
    assert s[1] == 1.0
    assert s[1] < s[2] < s[4] < s[8]
    assert 1.6 <= s[2] <= 2.2
    assert 3.2 <= s[4] <= 4.4
    assert 6.0 <= s[8] <= 8.0
