"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure from the paper's evaluation
and prints a paper-vs-measured comparison.  Simulation results are memoised
inside :mod:`repro.harness.runner`, so pytest-benchmark's calibration
re-invocations don't re-simulate.

Set ``REPRO_SCALE=0.5`` (etc.) to shrink the simulated workloads for a
quick pass.
"""

import pytest


def print_report(text: str) -> None:
    print()
    print(text)
    print()
