"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure from the paper's evaluation
and prints a paper-vs-measured comparison.  Simulation results are
memoised in-process (:mod:`repro.harness.runner`) and persisted on disk
(:mod:`repro.harness.cache`), so pytest-benchmark's calibration
re-invocations never re-simulate and a *re-run* of the whole suite is
near-instant when the code hasn't changed.

Knobs (environment):

* ``REPRO_SCALE=0.5`` (etc.) — shrink the simulated workloads for a
  quick pass.
* ``REPRO_JOBS=N`` — fan the independent simulation points of each
  figure out over N worker processes (0 = all cores).
* ``REPRO_NO_CACHE=1`` — disable result caching (every invocation
  re-simulates).
"""

import pytest


def print_report(text: str) -> None:
    print()
    print(text)
    print()
