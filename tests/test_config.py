"""Unit tests for Table 1 configuration presets and latency compositions."""

import pytest

from repro.core import (
    INO,
    OOO,
    PIRANHA_P1,
    PIRANHA_P8,
    PIRANHA_P8F,
    PIRANHA_P8_PESSIMISTIC,
    preset,
    table1,
)


class TestTable1Piranha:
    """The P8 column of Table 1, recomposed from module latencies."""

    def test_clock(self):
        assert PIRANHA_P8.core.clock_mhz == 500.0
        assert PIRANHA_P8.core.issue_width == 1
        assert PIRANHA_P8.core.model == "inorder"

    def test_caches(self):
        assert PIRANHA_P8.l1.size_bytes == 64 * 1024
        assert PIRANHA_P8.l1.assoc == 2
        assert PIRANHA_P8.l2.size_bytes == 1024 * 1024
        assert PIRANHA_P8.l2.assoc == 8
        assert PIRANHA_P8.l2.banks == 8
        assert not PIRANHA_P8.l2.inclusive

    def test_l2_hit_16ns(self):
        assert PIRANHA_P8.lat.l2_hit() == 16.0

    def test_l2_fwd_24ns(self):
        assert PIRANHA_P8.lat.l2_fwd() == 24.0

    def test_local_memory_80ns(self):
        assert PIRANHA_P8.lat.local_memory() == 80.0

    def test_remote_120ns(self):
        assert PIRANHA_P8.lat.remote_memory() == 120.0
        assert PIRANHA_P8.lat.remote_memory_composed() == pytest.approx(120.0)

    def test_remote_dirty_180ns(self):
        assert PIRANHA_P8.lat.remote_dirty() == 180.0
        assert PIRANHA_P8.lat.remote_dirty_composed() == pytest.approx(180.0)

    def test_rdram_latencies(self):
        assert PIRANHA_P8.lat.dram_random == 60.0
        assert PIRANHA_P8.lat.dram_page_hit == 40.0
        assert PIRANHA_P8.lat.dram_rest_of_line == 30.0


class TestTable1Ooo:
    def test_core(self):
        assert OOO.core.clock_mhz == 1000.0
        assert OOO.core.issue_width == 4
        assert OOO.core.window_size == 64
        assert OOO.core.model == "ooo"

    def test_l2(self):
        assert OOO.l2.size_bytes == 1536 * 1024
        assert OOO.l2.assoc == 6
        assert OOO.lat.l2_hit() == 12.0

    def test_local_memory(self):
        assert OOO.lat.local_memory() == 80.0


class TestTable1FullCustom:
    def test_core(self):
        assert PIRANHA_P8F.core.clock_mhz == 1250.0
        assert PIRANHA_P8F.cpus == 8

    def test_latencies(self):
        assert PIRANHA_P8F.lat.l2_hit() == 12.0
        assert PIRANHA_P8F.lat.l2_fwd() == 16.0
        assert PIRANHA_P8F.lat.local_memory() == 80.0


class TestPessimistic:
    """Section 4's sensitivity parameters: 400 MHz, 32 KB 1-way, 22/32 ns."""

    def test_parameters(self):
        c = PIRANHA_P8_PESSIMISTIC
        assert c.core.clock_mhz == 400.0
        assert c.l1.size_bytes == 32 * 1024
        assert c.l1.assoc == 1
        assert c.lat.l2_hit() == 22.0
        assert c.lat.l2_fwd() == 32.0


class TestDerivedConfigs:
    def test_with_cpus(self):
        assert PIRANHA_P1.cpus == 1
        assert PIRANHA_P1.lat == PIRANHA_P8.lat
        assert preset("P4").cpus == 4

    def test_ino_is_single_issue_ooo_twin(self):
        assert INO.core.issue_width == 1
        assert INO.core.model == "inorder"
        assert INO.lat == OOO.lat
        assert INO.l2 == OOO.l2

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("P16")


class TestTable1Rendering:
    def test_three_columns(self):
        t = table1()
        assert set(t) == {"P8", "OOO", "P8F"}

    def test_p8_row_values(self):
        row = table1()["P8"]
        assert row["Processor Speed"] == "500 MHz"
        assert row["L2 Hit / L2 Fwd Latency"] == "16 ns / 24 ns"
        assert row["Local Memory Latency"] == "80 ns"
        assert row["Remote Memory Latency"] == "120 ns"
        assert row["Remote Dirty Latency"] == "180 ns"
        assert row["L1 Cache Size"] == "64 KB"

    def test_ooo_row(self):
        row = table1()["OOO"]
        assert row["Processor Speed"] == "1 GHz"
        assert row["Issue Width"] == 4
        assert row["Instruction Window Size"] == 64
        assert row["L2 Cache Size"] == "1.5MB"

    def test_single_cpu_has_no_fwd_latency(self):
        assert "NA" in PIRANHA_P1.table1_row()["L2 Hit / L2 Fwd Latency"]


class TestGeometry:
    def test_l1_sets(self):
        assert PIRANHA_P8.l1.sets == 512

    def test_l2_sets_per_bank(self):
        assert PIRANHA_P8.l2.sets_per_bank == 256
