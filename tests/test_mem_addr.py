"""Unit tests for address geometry and the NUMA home map."""

import pytest

from repro.mem import LINE_BYTES, AddressMap, l2_bank, line_addr, line_index, line_offset


class TestLineGeometry:
    def test_line_bytes(self):
        assert LINE_BYTES == 64

    def test_line_addr_alignment(self):
        assert line_addr(0x1234) == 0x1200
        assert line_addr(0x1200) == 0x1200

    def test_line_index(self):
        assert line_index(0x1240) == 0x49

    def test_line_offset(self):
        assert line_offset(0x1234) == 0x34


class TestL2BankInterleave:
    def test_low_line_bits_select_bank(self):
        # consecutive lines hit consecutive banks (Section 2.3)
        banks = [l2_bank(i * 64) for i in range(16)]
        assert banks == [0, 1, 2, 3, 4, 5, 6, 7] * 2

    def test_same_line_same_bank(self):
        assert l2_bank(0x1000) == l2_bank(0x103F)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            l2_bank(0, banks=6)


class TestAddressMap:
    def test_single_node_owns_everything(self):
        amap = AddressMap(1)
        assert all(amap.home_of(a) == 0 for a in (0, 8192, 1 << 30))

    def test_round_robin_interleave(self):
        amap = AddressMap(4, home_granularity=8192)
        homes = [amap.home_of(i * 8192) for i in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_lines_within_chunk_share_home(self):
        amap = AddressMap(4)
        assert amap.home_of(8192) == amap.home_of(8192 + 64)

    def test_is_local(self):
        amap = AddressMap(2)
        assert amap.is_local(0, 0)
        assert not amap.is_local(8192, 0)

    def test_limits(self):
        with pytest.raises(ValueError):
            AddressMap(0)
        with pytest.raises(ValueError):
            AddressMap(2000)
        with pytest.raises(ValueError):
            AddressMap(2, home_granularity=32)
        with pytest.raises(ValueError):
            AddressMap(2, home_granularity=12345)

    def test_max_scale_1024_nodes(self):
        amap = AddressMap(1024)
        assert amap.home_of(1023 * 8192) == 1023
