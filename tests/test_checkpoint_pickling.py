"""Unit tests for the closure-capable checkpoint pickler.

The simulation graph is full of local functions and lambdas (protocol
engine senders, trace clocks, sampler collectors) that the stock pickle
module refuses.  :mod:`repro.checkpoint.pickling` serialises them by
value while leaving importable functions on the fast reference path, and
must preserve the two properties the snapshot relies on: shared-object
identity (two closures over one cache re-link to one restored cache) and
self-reference (a closure that captures itself).
"""

import pickle

import pytest

from repro.checkpoint.pickling import (
    _EMPTY_CELL,
    _is_importable,
    dumps,
    loads,
)


def _round_trip(obj):
    return loads(dumps(obj))


def top_level_helper(x):
    return x * 3


class Holder:
    """Instance carrying a closure attribute (importable class — the
    pickler only takes over for *functions*; classes must be importable,
    which every simulation class is)."""

    def __init__(self):
        base = 10
        self.fn = lambda x: x + base


class Counter:
    def __init__(self):
        self.n = 0

    def bump(self):
        self.n += 1


class TestImportableFastPath:
    def test_module_function_by_reference(self):
        fn = _round_trip(top_level_helper)
        assert fn is top_level_helper

    def test_is_importable_detects_locals(self):
        def local():  # pragma: no cover - identity only
            pass

        assert _is_importable(top_level_helper)
        assert not _is_importable(local)

    def test_builtin_types_unaffected(self):
        data = {"a": [1, 2.5, "x"], "b": (None, True)}
        assert _round_trip(data) == data


class TestClosureSerialisation:
    def test_plain_closure(self):
        def make(n):
            def add(x):
                return x + n
            return add

        add7 = _round_trip(make(7))
        assert add7(5) == 12

    def test_lambda_with_default(self):
        fn = _round_trip(lambda x, k=4: x * k)
        assert fn(3) == 12
        assert fn(3, k=2) == 6

    def test_shared_capture_identity(self):
        """Two closures over one object re-link to ONE restored object."""
        shared = {"count": 0}

        def bump():
            shared["count"] += 1

        def read():
            return shared["count"]

        bump2, read2 = _round_trip((bump, read))
        bump2()
        bump2()
        assert read2() == 2
        assert shared["count"] == 0  # originals untouched

    def test_self_referential_closure(self):
        def make():
            def fact(n):
                return 1 if n <= 1 else n * fact(n - 1)
            return fact

        fact = _round_trip(make())
        assert fact(5) == 120

    def test_function_attributes_survive(self):
        def tagged():
            return 1

        tagged.marker = "xyz"
        got = _round_trip(tagged)
        assert got.marker == "xyz"

    def test_globals_resolve_in_defining_module(self):
        """A serialised closure calls module globals through the live
        module dict — it must see this module's helpers after restore."""
        def wrap(x):
            return top_level_helper(x)

        assert _round_trip(wrap)(4) == 12

    def test_empty_cell_round_trips(self):
        """Cells that were never filled (e.g. a forward self-reference
        captured before assignment) restore as empty, not as the
        sentinel leaking into user code."""
        def make():
            def peek():
                try:
                    return late
                except NameError:
                    return "unset"
            if False:  # pragma: no cover - keeps `late` a cell, unset
                late = 1
            return peek

        peek = _round_trip(make())
        assert peek() == "unset"

    def test_sentinel_is_singleton_marker(self):
        assert repr(_EMPTY_CELL)


class TestStockPickleStillRefuses:
    def test_reason_this_module_exists(self):
        def local():
            pass

        with pytest.raises(Exception):
            pickle.dumps(local)
        assert callable(loads(dumps(local)))


class TestBoundMethodsAndInstances:
    def test_instance_with_closure_attribute(self):
        holder = _round_trip(Holder())
        assert holder.fn(5) == 15

    def test_bound_method_of_restored_instance(self):
        counter = Counter()
        restored_bump = _round_trip(counter.bump)
        restored_bump()
        assert restored_bump.__self__.n == 1
        assert counter.n == 0
