"""Flight-deck observability: span tracer, host profiler, live telemetry.

Covers the PR's acceptance criteria:

* each transaction's child spans partition the root span exactly —
  sum-of-hops == span duration — and the traced per-class latencies
  reconcile with the probe latency histograms from the same run,
* the exported ``repro-trace/1`` document validates against its schema
  and is simultaneously well-formed Chrome trace-event / Perfetto input,
* the host profiler perturbs nothing when disabled (bit-identical
  deterministic payloads) and attributes sampled wall-clock to
  (component, event-class) pairs when enabled,
* telemetry streams carry run_start / interval / window / checkpoint /
  run_end records, survive the harness (serial, parallel, sampled,
  cached) and fold into the result-cache key as an enable marker,
* the interval sampler flushes its partial final interval on early
  termination (S1) and the ``repro watch`` / ``repro profile`` CLI
  verbs work end to end.
"""

import dataclasses
import io
import json

import pytest

from repro.core import PiranhaSystem, preset
from repro.harness import Job, MigratoryFactory, clear_cache, run_jobs
from repro.harness.runner import run_configured, simulate
from repro.observe import (
    HostProfiler,
    SpanCollector,
    TRACE_SCHEMA,
    TelemetryStream,
    read_records,
    render_record,
    trace_doc,
    validate_trace,
)
from repro.observe.hostprof import event_key
from repro.observe.spans import HOP_TRACKS, TRACKS, chrome_events
from repro.sim import Simulator
from repro.workloads import MicroParams, OltpParams, OltpWorkload

TINY_MICRO = MicroParams(iterations=120, warmup=30)
TINY_OLTP = OltpParams(transactions=6, warmup_transactions=8)


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    clear_cache()
    yield
    clear_cache()


def run_traced(nodes=1, config="P2", max_txns=64, rate=1):
    cfg = preset(config)
    system = PiranhaSystem(cfg, num_nodes=nodes)
    system.enable_probes(rate)
    system.enable_span_trace(max_txns)
    system.attach_workload(OltpWorkload(TINY_OLTP, cpus_per_node=cfg.cpus,
                                        num_nodes=nodes))
    system.run_to_completion()
    return system


class TestSpanCollector:
    def test_children_partition_root_exactly(self):
        system = run_traced()
        assert system.spans.txns
        for txn in system.spans.txns:
            spans = txn["spans"]
            # contiguous, gap-free, overlap-free cover of [t0, t1]
            assert spans[0]["t0_ps"] == txn["t0_ps"]
            assert spans[-1]["t1_ps"] == txn["t1_ps"]
            for a, b in zip(spans, spans[1:]):
                assert a["t1_ps"] == b["t0_ps"]
            assert all(s["dur_ps"] >= 0 for s in spans)
            assert (sum(s["dur_ps"] for s in spans)
                    == txn["latency_ps"]
                    == txn["t1_ps"] - txn["t0_ps"])

    def test_spans_reconcile_with_probe_histograms(self):
        """Acceptance criterion: traced per-class span durations agree
        with the probe latency aggregates from the same run.  With
        max_txns >= completed the tracer saw every probe the collector
        aggregated, so per-class counts and total latencies must match
        exactly (the trace is a lossless re-projection of the probes)."""
        system = run_traced(max_txns=100_000)
        probes = system.probes.as_dict()
        assert system.spans.seen == probes["completed"]

        by_class = {}
        for txn in system.spans.txns:
            blk = by_class.setdefault(txn["class"], [0, 0])
            blk[0] += 1
            blk[1] += txn["latency_ps"]
        for cls, stats in probes["classes"].items():
            count, total_ps = by_class.get(cls, (0, 0))
            assert count == stats["count"], cls
            if count:
                # probe aggregates are in ns (float); span sums in ps
                assert total_ps / 1000.0 == pytest.approx(
                    stats["mean_ns"] * stats["count"], rel=1e-9), cls
                # histogram mass agrees too
                assert sum(stats["histogram"]["bins"]) == count

    def test_every_hop_lands_on_a_known_track(self):
        system = run_traced()
        for txn in system.spans.txns:
            for span in txn["spans"]:
                assert span["track"] in TRACKS
                assert HOP_TRACKS.get(span["label"], "misc") == span["track"]

    def test_max_txns_caps_kept_not_seen(self):
        system = run_traced(max_txns=5)
        assert len(system.spans.txns) == 5
        assert system.spans.seen > 5

    def test_requires_probes(self):
        system = PiranhaSystem(preset("P1"), num_nodes=1)
        with pytest.raises(RuntimeError, match="probes"):
            system.enable_span_trace()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanCollector(0)


class TestTraceDoc:
    def _doc(self, **kw):
        system = run_traced(**kw)
        return trace_doc(system.spans, "P2", 1,
                         system.probes.rate), system

    def test_doc_validates(self):
        doc, _ = self._doc()
        assert doc["schema"] == TRACE_SCHEMA
        assert validate_trace(doc) == []

    def test_doc_round_trips_through_json(self):
        doc, _ = self._doc()
        assert validate_trace(json.loads(json.dumps(doc))) == []

    def test_doc_is_deterministic(self):
        docs = [json.dumps(self._doc()[0], sort_keys=True)
                for _ in range(2)]
        assert docs[0] == docs[1]

    def test_chrome_events_shape(self):
        doc, system = self._doc()
        events = doc["traceEvents"]
        # metadata names every track row on every node
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {
            "process_name", "thread_name", "thread_sort_index"}
        named_tracks = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert named_tracks == set(TRACKS)
        # one root X event per kept txn plus one X per child span
        xs = [e for e in events if e["ph"] == "X"]
        n_spans = sum(len(t["spans"]) for t in system.spans.txns)
        assert len(xs) == len(system.spans.txns) + n_spans
        for ev in xs:
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)

    def test_protocol_events_become_instants(self):
        from repro.core import CoherenceChecker

        cfg = preset("P2")
        system = PiranhaSystem(cfg, num_nodes=1,
                               checker=CoherenceChecker.with_trace(512))
        system.enable_probes(1)
        system.enable_span_trace(16)
        system.attach_workload(OltpWorkload(TINY_OLTP,
                                            cpus_per_node=cfg.cpus))
        system.run_to_completion()
        proto = system.checker.trace.events()
        assert proto
        events = chrome_events(system.spans.txns, protocol_events=proto)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(proto)
        assert all(e["cat"] == "protocol" for e in instants)

    def test_validator_flags_broken_invariants(self):
        doc, _ = self._doc()
        assert validate_trace("nope") == ["document is not a JSON object"]
        bad = json.loads(json.dumps(doc))
        bad["schema"] = "repro-trace/0"
        assert any("schema" in p for p in validate_trace(bad))
        bad = json.loads(json.dumps(doc))
        bad["txns"][0]["spans"][0]["t1_ps"] += 1  # breaks contiguity + dur
        assert validate_trace(bad)
        bad = json.loads(json.dumps(doc))
        bad["txns"][0]["latency_ps"] += 5  # breaks hop-sum == latency
        assert any("sum" in p or "latency" in p for p in validate_trace(bad))
        bad = json.loads(json.dumps(doc))
        del bad["traceEvents"]
        assert any("traceEvents" in p for p in validate_trace(bad))
        bad = json.loads(json.dumps(doc))
        bad["txns"][0]["spans"][0]["track"] = "warp_core"
        assert any("unknown track" in p for p in validate_trace(bad))


class TestHostProfiler:
    def test_event_key_classification(self):
        class Widget:
            def frob(self):
                pass

        def bare():
            pass

        w = Widget()
        assert event_key(w.frob) == ("Widget", "frob")
        assert event_key(bare) == ("function", "bare")

    def test_event_key_unwraps_periodic_ticks(self):
        sim = Simulator()
        fired = []
        sim.schedule_every(100, lambda: fired.append(1) or False)
        # grab the _PeriodicTick wrapper straight from the queue
        tick = next(handle.fn for _, _, handle in sim._queue
                    if type(handle.fn).__name__ == "_PeriodicTick")
        comp, event = event_key(tick)
        assert event.startswith("every:")

    def test_disabled_profiler_is_bit_identical(self):
        base = simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                        units_attr="iterations")
        profiled = simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                            units_attr="iterations", profile=4)
        assert profiled.payload_tuple() == base.payload_tuple()
        assert "host_profile" not in base.extras
        assert "host_profile" in profiled.extras

    def test_span_tracing_never_perturbs_measurement(self):
        base = simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                        units_attr="iterations", probe_rate=4)
        traced = simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                          units_attr="iterations", probe_rate=4,
                          trace_spans=32)
        assert traced.payload_tuple() == base.payload_tuple()
        assert validate_trace(traced.extras["trace"]) == []

    def test_sampled_attribution(self):
        result = simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                          units_attr="iterations", profile=4)
        prof = result.extras["host_profile"]
        assert prof["rate"] == 4
        assert prof["events_seen"] > 0
        # 1-in-4 sampling, exact by construction of the dispatch counter
        assert prof["events_sampled"] == prof["events_seen"] // 4
        assert prof["hotspots"]
        top = prof["hotspots"][0]
        assert top["samples"] > 0 and top["sampled_ns"] > 0
        assert sum(r["share"] for r in prof["hotspots"]) == pytest.approx(1.0)
        comps = {r["component"] for r in prof["hotspots"]}
        assert "L2Bank" in comps or "InOrderCpu" in comps

    def test_merge_and_render(self):
        a, b = HostProfiler(2), HostProfiler(2)
        a.record(len, 100)
        b.record(len, 50)
        b.events_seen = 4
        a.merge(b)
        assert a.buckets[event_key(len)] == [2, 150]
        assert "host profile" in a.render()

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            HostProfiler(0)


class TestTelemetry:
    def test_stream_records_through_simulate(self, tmp_path):
        path = tmp_path / "live.jsonl"
        simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                 units_attr="iterations", sample_interval_ps=10_000_000,
                 telemetry=str(path))
        records = read_records(str(path))
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "interval" in kinds
        intervals = [r for r in records if r["kind"] == "interval"]
        assert all("wall" in r for r in records)
        assert [r["index"] for r in intervals] == sorted(
            r["index"] for r in intervals)
        # S1: the tail interval is flushed and flagged
        assert intervals[-1]["partial"]

    def test_stream_to_file_like(self):
        buf = io.StringIO()
        with TelemetryStream(buf) as stream:
            stream.emit("run_start", config="P2")
            stream.emit("run_end", items=1)
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "run_start"

    def test_read_records_skips_partial_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "run_start"}\n{"kind": "inter')
        records = read_records(str(path))
        assert [r["kind"] for r in records] == ["run_start"]
        assert read_records(str(tmp_path / "missing.jsonl")) == []

    def test_render_record_kinds(self):
        assert "run_start" in render_record(
            {"kind": "run_start", "config": "P8", "workload": "oltp",
             "num_nodes": 1})
        line = render_record(
            {"kind": "interval", "index": 3, "t1_ps": 50_000_000,
             "partial": True, "reset": True,
             "derived": {"ipc": 0.5, "l1_miss_rate": 0.25}})
        assert "interval[3]" in line and "(partial)" in line
        assert "ipc=0.5000" in line
        assert "worst_ci" in render_record(
            {"kind": "window", "index": 0, "items": 10, "ci": {"a": 0.1}})
        assert "checkpoint" in render_record(
            {"kind": "checkpoint", "time_ps": 1_000_000, "bytes": 42})
        assert "(cached)" in render_record(
            {"kind": "run_end", "items": 5, "sim_wall_s": 0.1,
             "cached": True})

    def test_cache_hit_emits_cached_run_end(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                       units_attr="iterations", telemetry=str(first))
        run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                       units_attr="iterations", telemetry=str(second))
        replay = read_records(str(second))
        assert [r["kind"] for r in replay] == ["run_end"]
        assert replay[0]["cached"] is True

    def test_sampled_mode_emits_window_records(self, tmp_path):
        path = tmp_path / "sampled.jsonl"
        simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                 units_attr="iterations", sample_interval_ps=10_000_000,
                 mode="sampled", window=30, period=60,
                 telemetry=str(path))
        records = read_records(str(path))
        kinds = {r["kind"] for r in records}
        assert "window" in kinds
        windows = [r for r in records if r["kind"] == "window"]
        assert all("ci" in w and "items" in w for w in windows)


class TestHarnessIntegration:
    def _job(self, **kw):
        kw.setdefault("config", preset("P2"))
        return Job(factory=MigratoryFactory(TINY_MICRO),
                   units_attr="iterations", **kw)

    def test_cache_key_folds_flightdeck_settings(self):
        plain = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                               units_attr="iterations")
        traced = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                                units_attr="iterations", trace_spans=16)
        profiled = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                                  units_attr="iterations", profile=8)
        assert "trace" not in plain.extras
        assert "trace" in traced.extras
        assert "host_profile" in profiled.extras
        # distinct cache entries: a traced repeat keeps its trace
        again = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                               units_attr="iterations", trace_spans=16)
        assert (json.dumps(again.extras["trace"], sort_keys=True)
                == json.dumps(traced.extras["trace"], sort_keys=True))
        # observability never perturbs the deterministic payload
        assert traced.payload_tuple() == plain.payload_tuple()

    def test_trace_spans_imply_probe_rate(self):
        result = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                                units_attr="iterations", trace_spans=16)
        assert result.extras["trace"]["probe_rate"] == 64
        # explicit probe rate wins over the implied default
        explicit = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                                  units_attr="iterations", trace_spans=16,
                                  probe_rate=4)
        assert explicit.extras["trace"]["probe_rate"] == 4

    def test_parallel_jobs_carry_trace_and_profile(self):
        job = self._job(trace_spans=16, profile=8)
        serial = simulate(job.config, job.factory,
                          units_attr=job.units_attr,
                          trace_spans=16, profile=8)
        clear_cache()
        other = self._job(trace_spans=16, profile=8,
                          config=dataclasses.replace(preset("P2"),
                                                     name="P2b"))
        results = run_jobs([job, other], jobs=2)
        for result in results:
            assert validate_trace(result.extras["trace"]) == []
            assert result.extras["host_profile"]["events_sampled"] > 0
        assert (json.dumps(results[0].extras["trace"], sort_keys=True)
                == json.dumps(serial.extras["trace"], sort_keys=True))

    def test_parallel_jobs_stream_telemetry_from_workers(self, tmp_path):
        paths = [tmp_path / "w0.jsonl", tmp_path / "w1.jsonl"]
        jobs = [
            self._job(sample_interval_ps=10_000_000,
                      telemetry=str(paths[0])),
            self._job(sample_interval_ps=10_000_000,
                      telemetry=str(paths[1]),
                      config=dataclasses.replace(preset("P2"), name="P2b")),
        ]
        run_jobs(jobs, jobs=2)
        for path in paths:
            kinds = [r["kind"] for r in read_records(str(path))]
            assert kinds[0] == "run_start" and kinds[-1] == "run_end"

    def test_sampled_mode_attaches_trace_extras(self):
        result = simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                          units_attr="iterations", mode="sampled",
                          window=30, period=60, trace_spans=16, profile=8)
        assert validate_trace(result.extras["trace"]) == []
        assert result.extras["host_profile"]["events_seen"] > 0


class TestPartialTailFlush:
    """S1: early termination must flush (and flag) the tail interval."""

    def test_max_events_bound_flushes_partial_tail(self):
        cfg = preset("P2")
        system = PiranhaSystem(cfg, num_nodes=1)
        system.enable_sampler(10_000_000)
        system.attach_workload(OltpWorkload(TINY_OLTP,
                                            cpus_per_node=cfg.cpus))
        with pytest.raises(RuntimeError, match="stalled"):
            system.run_to_completion(max_events=500)
        assert system.sampler.intervals
        assert system.sampler.intervals[-1]["partial"]

    def test_resume_after_early_flush_continues_series(self):
        cfg = preset("P2")
        system = PiranhaSystem(cfg, num_nodes=1)
        system.enable_sampler(10_000_000)
        system.attach_workload(OltpWorkload(TINY_OLTP,
                                            cpus_per_node=cfg.cpus))
        with pytest.raises(RuntimeError, match="stalled"):
            system.run_to_completion(max_events=500)
        early = list(system.sampler.intervals)
        system.resume()
        series = system.sampler.intervals
        assert len(series) > len(early)
        # no duplicated or zero-width record at the flush boundary
        for a, b in zip(series, series[1:]):
            assert b["t1_ps"] > b["t0_ps"] == a["t1_ps"]


class TestCli:
    def test_run_trace_flags_write_valid_doc(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        rc = main(["run", "--config", "P2", "--workload", "migratory",
                   "--scale", "0.2", "--trace-spans", "32",
                   "--trace-out", str(out), "--profile", "8"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_trace(doc) == []
        assert doc["kept"] <= 32
        printed = capsys.readouterr().out
        assert "span trace written" in printed
        assert "host profile:" in printed

    def test_profile_verb(self, capsys):
        from repro.__main__ import main

        rc = main(["profile", "--config", "P2", "--workload", "migratory",
                   "--scale", "0.2", "--sample-rate", "4"])
        assert rc == 0
        assert "host profile:" in capsys.readouterr().out

    def test_profile_verb_json(self, capsys):
        from repro.__main__ import main

        rc = main(["profile", "--config", "P2", "--workload", "migratory",
                   "--scale", "0.2", "--sample-rate", "4", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["rate"] == 4
        assert doc["hotspots"]

    def test_run_telemetry_then_watch(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "live.jsonl"
        rc = main(["run", "--config", "P2", "--workload", "migratory",
                   "--scale", "0.2", "--telemetry", str(path)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["watch", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run_start" in out and "run_end" in out

    def test_watch_follow_stops_at_run_end(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "done.jsonl"
        with TelemetryStream(str(path)) as stream:
            stream.emit("run_start", config="P2", workload="x", num_nodes=1)
            stream.emit("run_end", items=3, sim_wall_s=0.0)
        rc = main(["watch", str(path), "--follow", "--timeout", "2"])
        assert rc == 0
        assert "run_end" in capsys.readouterr().out

    def test_watch_missing_file(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main(["watch", str(tmp_path / "nope.jsonl")])
        assert rc == 1
