"""Unit tests for cruise-missile invalidates (§2.5.3)."""

import pytest

from repro.interconnect import (
    MAX_CMI_MESSAGES,
    buffering_bound,
    cmi_latency,
    fanout_latency,
    fanout_messages,
    mesh2d,
    plan_cmi,
    ring,
)


class TestPlanning:
    def test_covers_all_sharers(self):
        topo = mesh2d(4, 4)
        sharers = set(range(16)) - {0, 5}
        plan = plan_cmi(topo, home=5, requester=0, sharers=sharers | {0})
        assert plan.covered() == frozenset(sharers)

    def test_at_most_four_messages(self):
        topo = mesh2d(5, 5)
        plan = plan_cmi(topo, home=0, requester=1, sharers=range(25))
        assert plan.messages_injected <= MAX_CMI_MESSAGES

    def test_one_ack_per_chain(self):
        topo = ring(10)
        plan = plan_cmi(topo, home=0, requester=1, sharers=range(2, 10))
        assert plan.acks_generated == plan.messages_injected

    def test_requester_never_invalidated(self):
        topo = ring(8)
        plan = plan_cmi(topo, home=0, requester=3, sharers=range(8))
        assert 3 not in plan.covered()

    def test_empty_sharers(self):
        topo = ring(4)
        plan = plan_cmi(topo, home=0, requester=1, sharers=[1])
        assert plan.messages_injected == 0

    def test_few_sharers_one_each(self):
        topo = ring(8)
        plan = plan_cmi(topo, home=0, requester=1, sharers=[2, 3])
        assert plan.messages_injected == 2
        assert all(len(c) == 1 for c in plan.chains)

    def test_deterministic(self):
        topo = mesh2d(4, 4)
        a = plan_cmi(topo, 0, 1, range(16))
        b = plan_cmi(topo, 0, 1, range(16))
        assert a == b


class TestBufferingBound:
    def test_paper_bound_128_headers(self):
        """2 engines x 16 TSRFs x 4 invalidations = 128 message headers —
        independent of the number of nodes."""
        assert buffering_bound() == 128

    def test_bound_independent_of_node_count(self):
        assert buffering_bound() == buffering_bound()  # no node parameter


class TestLatencyComparison:
    def test_cmi_beats_fanout_for_large_sharer_sets(self):
        """CMI avoids the injection/gather serialisation at home and
        requester."""
        topo = mesh2d(5, 5)
        sharers = list(range(2, 25))
        plan = plan_cmi(topo, home=0, requester=1, sharers=sharers)
        t_cmi = cmi_latency(topo, plan, hop_ns=8.0, visit_ns=10.0)
        t_fan = fanout_latency(topo, home=0, requester=1, sharers=sharers,
                               hop_ns=8.0, visit_ns=10.0,
                               inject_ns=6.0, gather_ns=6.0)
        assert t_cmi < t_fan

    def test_fanout_message_count_scales_with_sharers(self):
        injected, acks = fanout_messages(list(range(2, 20)), requester=1)
        assert injected == 18 and acks == 18

    def test_fanout_empty(self):
        topo = ring(4)
        assert fanout_latency(topo, 0, 1, [1], 8, 10, 6, 6) == 0.0
