"""Unit tests for the transaction state register file (§2.5.1)."""

import pytest

from repro.core.tsrf import TSRF_ENTRIES, Tsrf, TsrfFullError


class TestAllocation:
    def test_sixteen_entries(self):
        assert TSRF_ENTRIES == 16
        assert Tsrf().free_count == 16

    def test_allocate_and_free(self):
        tsrf = Tsrf()
        entry = tsrf.allocate(0x1000, pc=5, now_ps=100, req_node=3)
        assert entry.valid
        assert entry.addr == 0x1000
        assert entry.pc == 5
        assert entry.vars["req_node"] == 3
        assert tsrf.occupancy() == 1
        tsrf.free(entry)
        assert tsrf.occupancy() == 0
        assert not entry.valid

    def test_full_raises(self):
        tsrf = Tsrf()
        for i in range(16):
            tsrf.allocate(i * 64, pc=0, now_ps=0)
        with pytest.raises(TsrfFullError):
            tsrf.allocate(0x9999, pc=0, now_ps=0)
        assert tsrf.alloc_failures == 1

    def test_high_water(self):
        tsrf = Tsrf()
        entries = [tsrf.allocate(i, 0, 0) for i in range(5)]
        for e in entries:
            tsrf.free(e)
        assert tsrf.high_water == 5

    def test_reuse_after_free(self):
        tsrf = Tsrf()
        for _ in range(100):
            e = tsrf.allocate(0x40, 0, 0)
            tsrf.free(e)
        assert tsrf.occupancy() == 0


class TestMatching:
    def test_match_by_address_and_mode(self):
        tsrf = Tsrf()
        e = tsrf.allocate(0x1000, 0, 0)
        e.waiting = "external"
        assert tsrf.match(0x1000, "external") is e
        assert tsrf.match(0x1000, "local") is None
        assert tsrf.match(0x2000, "external") is None

    def test_find_any(self):
        tsrf = Tsrf()
        e = tsrf.allocate(0x1000, 0, 0)
        assert tsrf.find(0x1000) is e
        assert tsrf.find(0x2000) is None

    def test_invalid_entries_never_match(self):
        tsrf = Tsrf()
        e = tsrf.allocate(0x1000, 0, 0)
        e.waiting = "external"
        tsrf.free(e)
        assert tsrf.match(0x1000, "external") is None


class TestTimeouts:
    def test_timed_out_entries(self):
        """RAS hook: the engine can monitor for failures via time-outs."""
        tsrf = Tsrf()
        old = tsrf.allocate(0x1000, 0, now_ps=0)
        fresh = tsrf.allocate(0x2000, 0, now_ps=900_000)
        expired = tsrf.timed_out(now_ps=1_000_000, timeout_ps=500_000)
        assert expired == [old]
