"""Protocol sanitizer tests: trace ring, structural audits, injection.

The acceptance bar for the sanitizer is twofold: clean runs pass every
audit with zero violations, and an *injected* protocol mutation (a
deliberately broken invalidation, a leaked TSRF entry, a non-inclusion
breach) is caught and arrives with a bounded trace dump attached.
"""

import argparse

import pytest

from repro.core import (
    MESI,
    CoherenceChecker,
    CoherenceViolation,
    PiranhaSystem,
    ProtocolTrace,
    audit_non_inclusion,
    audit_system,
    audit_tsrf,
    preset,
)
from repro.core.l2 import L2Bank
from repro.workloads import MicroParams, MigratoryWrites


def small_migratory(nodes=2, cpus_config="P2", iterations=150, trace=2048):
    checker = CoherenceChecker.with_trace(trace)
    system = PiranhaSystem(preset(cpus_config), num_nodes=nodes,
                           checker=checker)
    system.attach_workload(MigratoryWrites(
        MicroParams(iterations=iterations, warmup=30),
        cpus_per_node=preset(cpus_config).cpus, num_nodes=nodes))
    return system, checker


class TestProtocolTrace:
    def test_ring_is_bounded(self):
        tr = ProtocolTrace(capacity=4)
        for i in range(10):
            tr.record("fill", 0, i * 64)
        assert len(tr) == 4
        assert tr.recorded == 10
        # the oldest events scrolled out; the newest survive in order
        assert [ev.line for ev in tr.events()] == [0x180, 0x1C0, 0x200, 0x240]

    def test_sequence_numbers_never_wrap(self):
        tr = ProtocolTrace(capacity=2)
        for _ in range(5):
            tr.record("inval", 1, 0x40)
        assert [ev.seq for ev in tr.events()] == [3, 4]

    def test_filters_by_line_node_kind(self):
        tr = ProtocolTrace(capacity=64)
        tr.record("fill", 0, 0x40)
        tr.record("fill", 1, 0x80)
        tr.record("inval", 1, 0x40)
        assert len(tr.events(line=0x40)) == 2
        assert len(tr.events(node=1)) == 2
        assert len(tr.events(kind="inval")) == 1
        assert len(tr.events(line=0x40, node=1, kind="inval")) == 1
        assert tr.events(line=0x999) == []

    def test_last_keeps_newest_after_filtering(self):
        tr = ProtocolTrace(capacity=64)
        for i in range(6):
            tr.record("fill", 0, 0x40, detail=f"v{i}")
        got = tr.events(line=0x40, last=2)
        assert [ev.detail for ev in got] == ["v4", "v5"]

    def test_dump_is_bounded_and_scoped(self):
        tr = ProtocolTrace(capacity=256)
        for i in range(100):
            tr.record("fill", 0, 0x40)
        dump = tr.dump(line=0x40, last=8)
        body = dump.splitlines()
        assert "line=0x40" in body[0]
        assert len(body) == 1 + 8  # header + exactly `last` events

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            ProtocolTrace(capacity=0)

    def test_summary_counts(self):
        tr = ProtocolTrace(capacity=8)
        tr.record("fill", 0, 0x40)
        tr.record("pkt_send", 0, 0x40)
        s = tr.summary()
        assert s["fill"] == 1
        assert s["pkt_send"] == 1
        assert s["recorded"] == 2


class TestViolationCarriesTrace:
    def test_violation_message_has_bounded_line_history(self):
        ck = CoherenceChecker.with_trace(128)
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 10)
        ck.on_fill(0, 0, 0x80, MESI.SHARED, 1)  # unrelated line
        ck.on_invalidate(0, 0, 0x40)
        with pytest.raises(CoherenceViolation) as exc:
            ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 3)  # version regression
        msg = str(exc.value)
        assert "violation trace" in msg
        assert "line=0x40" in msg
        assert "0x80" not in msg  # dump is filtered to the violating line

    def test_traceless_checker_raises_bare_message(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 10)
        ck.on_invalidate(0, 0, 0x40)
        with pytest.raises(CoherenceViolation) as exc:
            ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 3)
        assert "violation trace" not in str(exc.value)


class TestCleanRunsPassAudits:
    def test_multinode_run_zero_violations(self):
        system, checker = small_migratory(nodes=2)
        system.enable_continuous_audit(interval_ps=1_000_000)
        system.run_to_completion()
        tel = system.verify()
        assert tel["audit_quiesced"] == 1.0
        assert tel["audit_continuous_runs"] > 0
        assert tel["audit_nodes"] == 2.0
        assert tel["checker_fills"] > 0
        assert tel["trace_events"] > 0
        assert tel["audit_dir_holdings"] > 0

    def test_audit_system_midrun_skips_quiesce_only_checks(self):
        system, checker = small_migratory(nodes=2)
        system.run_to_completion()
        tel = audit_system(system, quiesced=False)
        assert tel["audit_quiesced"] == 0.0
        assert tel["audit_dir_holdings"] == 0.0


class TestInjectedMutations:
    def test_lost_invalidation_caught_with_trace_dump(self, monkeypatch):
        """The acceptance test: mutate the protocol so invalidations ack
        without invalidating (the classic lost-invalidation bug) and the
        sanitizer must catch it, attaching a bounded per-line history."""
        def ack_without_invalidating(self, line, on_done, epoch=None):
            self.schedule(self.t_tag + self.t_ics, on_done)

        monkeypatch.setattr(L2Bank, "service_invalidate",
                            ack_without_invalidating)
        system, checker = small_migratory(nodes=2)
        with pytest.raises(CoherenceViolation) as exc:
            system.run_to_completion()
            system.verify()
        msg = str(exc.value)
        assert "violation trace" in msg
        # the dump is bounded: header advertises at most the `last` window
        assert "last" in msg and "recorded (ring capacity 2048)" in msg
        event_lines = [l for l in msg.splitlines() if l.startswith("#")]
        assert 0 < len(event_lines) <= 32

    def test_tsrf_leak_detected_at_quiesce(self):
        system, _ = small_migratory(nodes=1, iterations=40)
        system.run_to_completion()
        engine = system.nodes[0].home_engine
        engine.tsrf.allocate(0x7C0, 0, system.sim.now)  # leak one entry
        with pytest.raises(CoherenceViolation) as exc:
            audit_tsrf(system, quiesced=True)
        assert "TSRF leak at quiesce" in str(exc.value)

    def test_bank_serialisation_leak_detected_at_quiesce(self):
        system, _ = small_migratory(nodes=1, iterations=40)
        system.run_to_completion()
        bank = system.nodes[0].banks[0]
        bank._sharing_wb_due.add(0x7C0)  # a hold that never released
        with pytest.raises(CoherenceViolation) as exc:
            audit_tsrf(system, quiesced=True)
        assert "serialisation state leaked" in str(exc.value)

    def test_silent_directory_entry_drop_detected(self):
        """Mutate the home directory to forget a remote holder (the
        silent-drop bug: an entry write that lost the sharer vector).
        The directory cross-audit must flag the now-hidden remote copy."""
        from repro.core.directory import DirectoryEntry

        system, _ = small_migratory(nodes=2)
        system.run_to_completion()
        # find a line some node holds whose home is the *other* node
        victim = None
        for node in system.nodes:
            for bank in node.banks:
                held = set(bank.resident_line_addrs())
                for line, entry in bank.dup.entries.items():
                    if entry.sharers:
                        held.add(line)
                for line in held:
                    home = system.address_map.home_of(line)
                    if home != node.node_id:
                        victim = (home, line)
                        break
                if victim:
                    break
            if victim:
                break
        assert victim is not None, "migratory run must leave remote copies"
        home, line = victim
        system.dirstores[home].write(line, DirectoryEntry.uncached())
        with pytest.raises(CoherenceViolation) as exc:
            audit_system(system, quiesced=True)
        assert "hidden remote copy" in str(exc.value)

    def test_duplicate_owner_claim_detected(self):
        """Mutate the duplicate tags so a departed cache still claims
        ownership (two ownership handoffs racing: the second left the
        owner field naming a cache that is no longer a sharer)."""
        system, _ = small_migratory(nodes=1, iterations=60)
        system.run_to_completion()
        entry = bank = None
        for b in system.nodes[0].banks:
            for _line, e in b.dup.entries.items():
                if e.sharers:
                    bank, entry = b, e
                    break
            if entry:
                break
        assert entry is not None
        entry.owner = max(entry.sharers) + 2  # never a recorded sharer
        with pytest.raises(CoherenceViolation) as exc:
            audit_system(system, quiesced=True)
        assert "is not a sharer" in str(exc.value)

    def test_stale_dup_tag_detected(self):
        """Mutate the duplicate tags to keep mirroring a line after its
        L1 copy is gone (a replacement whose dup-tag update was lost).
        The exact-mirror audit must flag the stale tag."""
        system, _ = small_migratory(nodes=1, iterations=60)
        system.run_to_completion()
        node = system.nodes[0]
        bank = node.banks[0]
        # a line no L1 holds: far outside the workload's footprint
        stale_line = 0x7FFF_0000
        bank.dup.add_sharer(stale_line, 0, MESI.SHARED, make_owner=True)
        with pytest.raises(CoherenceViolation) as exc:
            audit_system(system, quiesced=True)
        assert "does not hold it" in str(exc.value)

    def test_non_inclusion_breach_detected(self):
        from repro.workloads import PrivateStream

        checker = CoherenceChecker.with_trace(512)
        system = PiranhaSystem(preset("P2"), num_nodes=1, checker=checker)
        # stream over more lines than the L1s hold, so evicted victims
        # populate the (non-inclusive) L2
        system.attach_workload(PrivateStream(
            MicroParams(iterations=3000, warmup=20, lines=2500),
            cpus_per_node=2))
        system.run_to_completion()
        node = system.nodes[0]
        line = bank = None
        for b in node.banks:
            resident = list(b.resident_line_addrs())
            if resident:
                bank, line = b, resident[0]
                break
        assert line is not None
        # claim an exclusive L1 copy for a line the L2 still holds
        bank.dup.add_sharer(line, 0, MESI.MODIFIED, make_owner=True)
        with pytest.raises(CoherenceViolation) as exc:
            audit_non_inclusion(system)
        assert "non-inclusion violated" in str(exc.value)


class TestHarnessCliParity:
    def test_identical_telemetry_in_extras(self, monkeypatch, tmp_path):
        """`run_workload(check_coherence=True)` and `repro run --check`
        must run the identical audit set and report identical sanitizer
        telemetry: both funnel through `PiranhaSystem.verify()`."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        from repro.__main__ import _build_checked_system
        from repro.harness.experiments import MigratoryFactory
        from repro.harness.runner import run_workload

        # harness path (scale 0.25 -> iterations=max(200, 1000*0.25)=250,
        # matching the CLI's WORKLOADS["migratory"] construction)
        result = run_workload(
            "P2", MigratoryFactory(params=MicroParams(iterations=250)),
            num_nodes=2, units_attr="iterations", check_coherence=True)

        # CLI path: exactly what cmd_run does for --check
        args = argparse.Namespace(config="P2", nodes=2, workload="migratory",
                                  scale=0.25, check=True, trace=0)
        _, system, checker = _build_checked_system(args)
        system.run_to_completion()
        cli_telemetry = system.verify()

        harness_sanitizer = {k: v for k, v in result.extras.items()
                             if not k.startswith("cache_")}
        assert harness_sanitizer == cli_telemetry
        assert harness_sanitizer["audit_quiesced"] == 1.0
        assert harness_sanitizer["audit_continuous_runs"] > 0
