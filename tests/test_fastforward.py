"""Sampled-simulation (fast-forward) subsystem tests.

The load-bearing property is the **bit-identity gate**: a detailed
measurement window restored from a checkpoint must be indistinguishable
from the same window run on the live machine.  With
``warming="detailed"`` a :class:`SampledRun` performs *no* approximation
— every span runs through the full event-driven model — so the
``handoff="restore"`` run (every window on a snapshot-rebuilt machine,
generators replayed from seed) and the ``handoff="none"`` run (one live
machine throughout) must agree bit-for-bit on the measurement payload,
every per-window record, and final simulated time.  That pins the
checkpoint subsystem as a faithful hand-off mechanism, which is what
lets functional fast-forward trust its snapshots.

Functional-warming behaviour (state equivalence, declines, statistics)
is tested at unit scale; cross-mode *accuracy* is characterised by
``scripts/bench_wallclock.py --fastforward``, not asserted here — it is
a statistical property, not a correctness invariant.
"""

import os

import pytest

from repro.core.config import preset
from repro.core.messages import AccessKind
from repro.fastforward import FunctionalWarmer, PhaseStream, SampledRun
from repro.harness.experiments import OltpFactory
from repro.harness.runner import (SAMPLED_PERIOD, SAMPLED_WINDOW,
                                  _sampled_key_extra, build_system, simulate)
from repro.sim.engine import Simulator
from repro.workloads import OltpParams

from .test_golden_digests import payload_digest

#: small but non-trivial: enough post-warm items for 2+ windows at the
#: test window/period, explicit so REPRO_SCALE cannot perturb the tests
OLTP_SMALL = OltpParams(transactions=24, warmup_transactions=30)
WINDOW = 300
PERIOD = 1200


def _sampled(warming: str, handoff: str, reuse_generators: bool = True,
             check: bool = False, nodes: int = 1, **kw):
    config = preset("P8" if nodes == 1 else "P2")
    factory = OltpFactory(OLTP_SMALL)
    system, _wl = build_system(config, factory, nodes,
                               check_coherence=check)
    run = SampledRun(system, window=WINDOW, period=PERIOD,
                     warming=warming, handoff=handoff,
                     reuse_generators=reuse_generators, **kw)
    run.run()
    result = run.to_result(config, nodes)
    return run, result


# ---------------------------------------------------------------------------
# the gate: restored windows are bit-identical to live windows
# ---------------------------------------------------------------------------

class TestBitIdentityGate:
    def test_restore_equals_live_detailed_warming(self):
        live_run, live = _sampled("detailed", handoff="none")
        rest_run, rest = _sampled("detailed", handoff="restore",
                                  reuse_generators=False)
        assert payload_digest(live) == payload_digest(rest)
        assert live_run.windows == rest_run.windows
        assert live_run.system.sim.now == rest_run.system.sim.now
        # the restore path really did round-trip the machine
        assert rest_run.handoff.captures == len(rest_run.windows)

    def test_generator_reuse_matches_replay(self):
        replay_run, replay = _sampled("detailed", handoff="restore",
                                      reuse_generators=False)
        reuse_run, reuse = _sampled("detailed", handoff="restore",
                                    reuse_generators=True)
        assert payload_digest(replay) == payload_digest(reuse)
        assert replay_run.windows == reuse_run.windows


# ---------------------------------------------------------------------------
# sampled-mode behaviour
# ---------------------------------------------------------------------------

class TestSampledRun:
    def test_deterministic(self):
        run1, res1 = _sampled("functional", handoff="capture")
        run2, res2 = _sampled("functional", handoff="capture")
        assert payload_digest(res1) == payload_digest(res2)
        assert run1.windows == run2.windows

    def test_windows_and_confidence_document(self):
        run, result = _sampled("functional", handoff="capture")
        assert len(run.windows) >= 2
        sampling = result.extras["sampling"]
        assert sampling["mode"] == "sampled"
        assert sampling["windows"] == len(run.windows)
        assert sampling["measured_items"] > 0
        assert sampling["ff_items"] > sampling["measured_items"]
        err = sampling["error"]
        for cls in ("busy_frac", "l2_frac", "mem_frac", "miss_hit_frac",
                    "miss_fwd_frac", "miss_mem_frac", "ps_per_item"):
            assert err[cls]["n"] == len(run.windows)
            assert err[cls]["ci95"] >= 0.0
        # extrapolated totals exist and are sane
        assert result.time_per_unit_ns > 0
        assert abs(result.busy_frac + result.l2_frac
                   + result.mem_frac - 1.0) < 1e-9

    def test_functional_close_to_detailed_smallscale(self):
        # shape check, deliberately loose: the functional and detailed
        # regimes must tell the same qualitative story even at toy scale
        _, func = _sampled("functional", handoff="capture")
        _, det = _sampled("detailed", handoff="none")
        assert abs(func.busy_frac - det.busy_frac) < 0.15
        assert abs(func.mem_frac - det.mem_frac) < 0.15

    def test_sampled_run_with_sanitizer(self):
        # warm-path state mutations must satisfy the full protocol audit
        run, result = _sampled("functional", handoff="capture", check=True)
        assert result.extras.get("audit_violations", 0) == 0
        assert run.warmer.warmed > 0

    def test_multinode_smoke(self):
        run, result = _sampled("functional", handoff="capture", nodes=2)
        assert len(run.windows) >= 1
        assert result.nodes == 2
        # multi-node declines are expected (engine-bound lines), and the
        # decline path must leave the stream advancing statistically
        assert run.warmer.items > 0

    def test_single_shot_and_validation(self):
        config = preset("P8")
        system, _ = build_system(config, OltpFactory(OLTP_SMALL), 1)
        run = SampledRun(system, window=WINDOW, period=PERIOD)
        run.run()
        with pytest.raises(RuntimeError):
            run.run()
        with pytest.raises(ValueError):
            SampledRun(system, window=0, period=PERIOD)
        with pytest.raises(ValueError):
            SampledRun(system, window=WINDOW, period=-1)
        with pytest.raises(ValueError):
            SampledRun(system, window=WINDOW, period=PERIOD, warming="x")
        with pytest.raises(ValueError):
            SampledRun(system, window=WINDOW, period=PERIOD, handoff="x")
        with pytest.raises(ValueError):
            SampledRun(system, window=WINDOW, period=PERIOD, warm_tail=-1)


# ---------------------------------------------------------------------------
# functional warmer units
# ---------------------------------------------------------------------------

class TestFunctionalWarmer:
    def _one_cpu_system(self):
        config = preset("P1")
        system, _ = build_system(config, OltpFactory(OLTP_SMALL), 1)
        (cpu,) = [c for n in system.nodes for c in n.cpus
                  if c.thread is not None]
        return system, cpu

    def test_advance_counts_and_boundary(self):
        _, cpu = self._one_cpu_system()
        warmer = FunctionalWarmer()
        consumed, hit, exhausted = warmer.advance(cpu, stop_at_boundary=True)
        assert hit and not exhausted
        assert warmer.items == consumed
        assert warmer.refs > 0
        assert warmer.l1_hits + warmer.warmed + warmer.skipped == warmer.refs
        summary = warmer.summary()
        assert summary["items"] == consumed
        assert summary["instructions"] == warmer.instructions

    def test_tail_skims_prefix(self):
        _, cpu = self._one_cpu_system()
        warmer = FunctionalWarmer()
        buf, consumed, _hit, _ex = warmer.collect(cpu, max_items=500, tail=64)
        assert consumed == 500
        assert len(buf) == 64
        assert warmer.skimmed == 500 - 64

    def test_warm_state_matches_detailed_occupancy(self):
        # after warming one CPU's span functionally, the L1s/L2 hold the
        # same *lines* a detailed run of the same span holds (P1: no
        # cross-CPU interleaving concerns, no timing-dependent ordering)
        def lines_of(system):
            held = set()
            for node in system.nodes:
                for l1 in list(node.l1i) + list(node.l1d):
                    held |= {ln.tag for s in l1.sets for ln in s.values()}
                for bank in node.banks:
                    held |= {(bank.bank_idx, t)
                             for s in bank.sets for t in s}
            return held

        config = preset("P1")
        sys_f, _ = build_system(config, OltpFactory(OLTP_SMALL), 1)
        (cpu_f,) = [c for n in sys_f.nodes for c in n.cpus
                    if c.thread is not None]
        FunctionalWarmer().advance(cpu_f, stop_at_boundary=True)

        sys_d, _ = build_system(config, OltpFactory(OLTP_SMALL), 1)
        run = SampledRun(sys_d, window=WINDOW, period=0, warming="detailed",
                         handoff="none")
        run._run_detailed(None, until_warm=True, record=False)
        assert lines_of(sys_f) == lines_of(run.system)


# ---------------------------------------------------------------------------
# phase streams and the clock jump
# ---------------------------------------------------------------------------

class TestPhaseStream:
    def test_budget_and_exhaustion(self):
        items = [(1, AccessKind.LOAD, i * 64, True) for i in range(5)]
        stream = PhaseStream(iter(items))
        stream.grant(3)
        assert [next(stream) for _ in range(3)] == items[:3]
        with pytest.raises(StopIteration):
            next(stream)
        assert stream.consumed == 3 and not stream.exhausted
        stream.grant(10)
        assert list(stream) == items[3:]
        assert stream.exhausted

    def test_ilp_mirrors_thread(self):
        class T:
            ilp = 2.5

            def __next__(self):
                raise StopIteration

        assert PhaseStream(T()).ilp == 2.5


class TestAdvanceTo:
    def test_monotonic_and_guarded(self):
        sim = Simulator()
        sim.advance_to(1000)
        assert sim.now == 1000
        with pytest.raises(ValueError):
            sim.advance_to(500)
        fired = []
        sim.schedule_at(2000, lambda: fired.append(True))
        with pytest.raises(RuntimeError):
            sim.advance_to(3000)  # pending event at 2000 ps
        sim.run()
        sim.advance_to(3000)
        assert sim.now == 3000 and fired


# ---------------------------------------------------------------------------
# harness integration: cache keys and the warm store
# ---------------------------------------------------------------------------

class TestHarnessIntegration:
    def test_sampled_key_extra(self):
        base = (("oltp", 1.0),)
        assert _sampled_key_extra(base, "detailed", 0, 0, "functional") == base
        folded = _sampled_key_extra(base, "sampled", 0, 0, "functional")
        assert folded == base + (("sampled", "sampled", SAMPLED_WINDOW,
                                  SAMPLED_PERIOD, "functional"),)
        # defaults resolve before folding: explicit default == omitted
        explicit = _sampled_key_extra(base, "sampled", SAMPLED_WINDOW,
                                      SAMPLED_PERIOD, "functional")
        assert explicit == folded

    def test_simulate_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            simulate(preset("P1"), OltpFactory(OLTP_SMALL), mode="turbo")

    def test_warm_store_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = preset("P8")
        factory = OltpFactory(OLTP_SMALL)
        cold = simulate(config, factory, mode="sampled", warmup=True,
                        window=WINDOW, period=PERIOD)
        warm = simulate(config, factory, mode="sampled", warmup=True,
                        window=WINDOW, period=PERIOD)
        assert not cold.extras["sampling"]["skip_warm"]
        assert warm.extras["sampling"]["skip_warm"]
        # restoring the warm snapshot changes nothing measurable
        assert payload_digest(cold) == payload_digest(warm)
        ckpts = list((tmp_path / "checkpoints").rglob("*.ckpt"))
        assert len(ckpts) == 1
