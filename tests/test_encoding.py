"""Unit tests for the DC-balanced 19-in-22 channel encoding (§2.6.1)."""

import pytest

from repro.interconnect import (
    CODED_BITS,
    WORD_BITS,
    WORD_WEIGHT,
    EncodingError,
    codebook_capacity,
    decode,
    decode_stream,
    encode,
    encode_stream,
    is_balanced,
    popcount,
)


class TestBalance:
    def test_every_codeword_has_11_of_22_wires_high(self):
        for value in (0, 1, 1000, 99999, (1 << 18) - 1):
            for rnd in (0, 1):
                word = encode(value, rnd)
                assert popcount(word) == WORD_WEIGHT
                assert word < (1 << WORD_BITS)

    def test_is_balanced(self):
        assert is_balanced(0b1111111111100000000000)
        assert not is_balanced(0b1111111111110000000000)
        assert not is_balanced((1 << 22) | 0b11111111111)


class TestRoundTrip:
    @pytest.mark.parametrize("value", [0, 1, 2, 255, 65535, 262143, 131072])
    @pytest.mark.parametrize("rnd", [0, 1])
    def test_roundtrip(self, value, rnd):
        assert decode(encode(value, rnd)) == (value, rnd)

    def test_capacity_covers_18_bits(self):
        assert codebook_capacity() >= 1 << CODED_BITS

    def test_payload_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(1 << 18)

    def test_bad_random_bit(self):
        with pytest.raises(EncodingError):
            encode(0, 2)


class TestInversionInsensitivity:
    """The random 19th bit is encoded by inverting all 22 wires; no two
    codewords may be complementary, so decoding stays unambiguous."""

    def test_inversion_is_random_bit(self):
        word = encode(12345, 0)
        inverted = word ^ ((1 << 22) - 1)
        assert decode(inverted) == (12345, 1)

    def test_base_codewords_never_complementary(self):
        # base codewords have LSB 0; their complements have LSB 1
        for value in (0, 7, 500, 262143):
            word = encode(value, 0)
            assert word & 1 == 0
            assert (word ^ ((1 << 22) - 1)) & 1 == 1


class TestErrorDetection:
    def test_single_wire_flip_breaks_balance(self):
        word = encode(777, 0)
        for wire in range(22):
            with pytest.raises(EncodingError):
                decode(word ^ (1 << wire))

    def test_unbalanced_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(0)


class TestStreams:
    def test_stream_roundtrip(self):
        data = [0, 1, 0xFFFF, 0xABCD]
        crc = [0, 1, 2, 3]
        rnd = [0, 1, 1, 0]
        wire = encode_stream(data, crc, rnd)
        d, c, r = decode_stream(wire)
        assert d == data and c == crc and r == rnd

    def test_stream_validates_widths(self):
        with pytest.raises(EncodingError):
            encode_stream([1 << 16], [0], [0])
        with pytest.raises(EncodingError):
            encode_stream([0], [4], [0])
