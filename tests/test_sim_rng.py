"""Unit tests for deterministic RNG substreams."""

from repro.sim import derive_seed, substream


class TestSubstream:
    def test_reproducible(self):
        a = substream(42, "oltp", 0, 1)
        b = substream(42, "oltp", 0, 1)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_distinct_tags_distinct_streams(self):
        a = substream(42, "oltp", 0, 1)
        b = substream(42, "oltp", 0, 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_distinct_seeds_distinct_streams(self):
        a = substream(1, "x")
        b = substream(2, "x")
        assert a.random() != b.random()

    def test_tag_order_matters(self):
        a = substream(42, "a", "b")
        b = substream(42, "b", "a")
        assert a.random() != b.random()


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, "net") == derive_seed(7, "net")

    def test_positive_63_bit(self):
        for tag in range(50):
            seed = derive_seed(123, tag)
            assert 0 <= seed < 2**63

    def test_distinct(self):
        seeds = {derive_seed(1, i) for i in range(100)}
        assert len(seeds) == 100
