"""Unit tests for deterministic RNG substreams."""

import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.sim import derive_seed, substream
from repro.sim.rng import load_state, state_dict


class TestSubstream:
    def test_reproducible(self):
        a = substream(42, "oltp", 0, 1)
        b = substream(42, "oltp", 0, 1)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_distinct_tags_distinct_streams(self):
        a = substream(42, "oltp", 0, 1)
        b = substream(42, "oltp", 0, 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_distinct_seeds_distinct_streams(self):
        a = substream(1, "x")
        b = substream(2, "x")
        assert a.random() != b.random()

    def test_tag_order_matters(self):
        a = substream(42, "a", "b")
        b = substream(42, "b", "a")
        assert a.random() != b.random()


def _draw_ten(rng):
    """Top-level so it crosses the ProcessPool pickle boundary."""
    return [rng.random() for _ in range(10)]


class TestStateRoundTrip:
    def test_state_dict_load_state_identical_draws(self):
        """A substream restored mid-stream continues with the exact
        draws the uninterrupted stream produces (checkpoint fidelity)."""
        rng = substream(42, "oltp", 3)
        _ = [rng.random() for _ in range(100)]  # advance mid-stream
        saved = state_dict(rng)
        expected = [rng.random() for _ in range(50)]
        fresh = substream(0, "other")  # unrelated stream, overwritten
        load_state(fresh, saved)
        assert [fresh.random() for _ in range(50)] == expected

    def test_state_dict_does_not_perturb_stream(self):
        a = substream(7, "x")
        b = substream(7, "x")
        state_dict(a)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_pickle_round_trip_identical_draws(self):
        rng = substream(42, "net", 1)
        _ = [rng.random() for _ in range(33)]
        clone = pickle.loads(pickle.dumps(rng))
        assert [clone.random() for _ in range(20)] == \
            [rng.random() for _ in range(20)]

    def test_substream_crosses_process_pool(self):
        """A mid-stream RNG shipped to a worker process draws the same
        sequence there as it would have locally (the parallel-harness
        warm path pickles live workloads across this boundary)."""
        rng = substream(42, "workload", 5)
        _ = [rng.random() for _ in range(17)]
        local = state_dict(rng)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_draw_ten, rng).result()
        restored = substream(0, 0)
        load_state(restored, local)
        assert remote == [restored.random() for _ in range(10)]


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, "net") == derive_seed(7, "net")

    def test_positive_63_bit(self):
        for tag in range(50):
            seed = derive_seed(123, tag)
            assert 0 <= seed < 2**63

    def test_distinct(self):
        seeds = {derive_seed(1, i) for i in range(100)}
        assert len(seeds) == 100
