"""Unit tests for the home/remote protocol microprograms (§2.5.1/2.5.3)."""

import pytest

from repro.core.microcode import MICROSTORE_WORDS, Op
from repro.core.microprograms import (
    HOME_ENTRY,
    LOCAL_MSG,
    REMOTE_ENTRY,
    build_home_program,
    build_remote_program,
)
from repro.interconnect.packets import PacketType


@pytest.fixture(scope="module")
def remote():
    return build_remote_program()


@pytest.fixture(scope="module")
def home():
    return build_home_program()


class TestAssembly:
    def test_both_fit_the_microstore(self, remote, home):
        assert remote.words_used < MICROSTORE_WORDS
        assert home.words_used < MICROSTORE_WORDS

    def test_instruction_scale_matches_paper(self, remote, home):
        """The paper's protocol uses about 500 microinstructions per
        engine; ours is the same order of magnitude."""
        assert 50 <= remote.words_used <= 600
        assert 100 <= home.words_used <= 600

    def test_every_entry_point_resolves(self, remote, home):
        for (kind, code), label in REMOTE_ENTRY.items():
            assert label in remote.entry_points
        for (kind, code), label in HOME_ENTRY.items():
            assert label in home.entry_points


class TestRemoteReadIsFourInstructions:
    """§2.5.1: 'a typical read transaction to a remote home involves a
    total of four instructions at the remote engine of the requesting
    node: a SEND, a RECEIVE, a TEST, and an LSEND'."""

    def test_re_read_shape(self, remote):
        pc = remote.entry_points["re_read"]
        ops = []
        # SEND
        word = remote.word_at(pc)
        ops.append(word.op)
        # RECEIVE (fall-through)
        word = remote.word_at(word.next_addr)
        ops.append(word.op)
        assert ops == [Op.SEND, Op.RECEIVE]
        # after dispatch: TEST then LSEND
        test_word = remote.word_at(remote.entry_points["re_read_test"])
        assert test_word.op == Op.TEST
        fill_s = remote.word_at(remote.entry_points["re_read_ls_s"])
        fill_e = remote.word_at(remote.entry_points["re_read_ls_e"])
        assert fill_s.op == Op.LSEND and fill_e.op == Op.LSEND


class TestDispatchTables:
    def test_remote_handles_all_forwarded_types(self):
        ext_codes = {code for kind, code in REMOTE_ENTRY if kind == "ext"}
        assert int(PacketType.FWD_READ) in ext_codes
        assert int(PacketType.FWD_READ_EXCLUSIVE) in ext_codes
        assert int(PacketType.INVALIDATE) in ext_codes
        assert int(PacketType.CMI_INVALIDATE) in ext_codes

    def test_home_handles_all_request_types(self):
        ext_codes = {code for kind, code in HOME_ENTRY if kind == "ext"}
        for ptype in (PacketType.READ, PacketType.READ_EXCLUSIVE,
                      PacketType.EXCLUSIVE, PacketType.EXCLUSIVE_NO_DATA,
                      PacketType.WRITEBACK):
            assert int(ptype) in ext_codes

    def test_local_message_codes_fit_4_bits(self):
        assert all(0 <= code < 16 for code in LOCAL_MSG.values())
        assert len(set(LOCAL_MSG.values())) == len(LOCAL_MSG)


class TestNoNakProperty:
    """The microcode contains no NAK/retry sends at all — the protocol's
    headline property."""

    def test_no_nak_message_symbols(self, remote, home):
        for program in (remote, home):
            assert not any("nak" in name.lower() for name in program.messages)
            assert not any("retry" in name.lower() for name in program.messages)


class TestThreeHopNoConfirmation:
    """he_read_dirty forwards to the owner and terminates after writing the
    directory — no 'ownership change' confirmation is ever awaited."""

    def test_dirty_path_has_no_receive(self, home):
        pc = home.entry_points["he_read_dirty"]
        seen_ops = []
        for _ in range(10):
            word = home.word_at(pc)
            seen_ops.append(word.op)
            if word.next_addr == MICROSTORE_WORDS - 1:  # END
                break
            pc = word.next_addr
        assert Op.RECEIVE not in seen_ops
        assert Op.SEND in seen_ops       # the forward
        assert Op.LSEND in seen_ops      # the directory write
