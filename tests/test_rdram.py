"""Unit tests for the RDRAM channel and memory controller (§2.4)."""

import pytest

from repro.core import PIRANHA_P8
from repro.core.rdram import MemoryController, RdramChannel
from repro.sim import Simulator


@pytest.fixture
def channel(sim):
    return RdramChannel(sim, "ch", PIRANHA_P8.lat, PIRANHA_P8.memory)


@pytest.fixture
def mc(sim):
    return MemoryController(sim, "mc", PIRANHA_P8)


class TestLatencies:
    def test_random_access_60ns(self, channel):
        res = channel.access(0x10000)
        assert res.critical_word_ps == 60_000
        assert not res.page_hit

    def test_rest_of_line_plus_30ns(self, channel):
        res = channel.access(0x10000)
        assert res.line_done_ps == 90_000

    def test_open_page_hit_40ns(self, channel, sim):
        channel.access(0x10000)
        sim.schedule(200_000, lambda: None)
        sim.run()
        res = channel.access(0x10040)  # same 512-byte page
        assert res.page_hit
        assert res.critical_word_ps == 40_000

    def test_different_page_misses(self, channel, sim):
        channel.access(0x10000)
        sim.schedule(200_000, lambda: None)
        sim.run()
        # same device (stride = 32 devices * 512B), different page
        res = channel.access(0x10000 + 512 * 32)
        assert not res.page_hit


class TestKeepOpenPolicy:
    def test_page_closes_after_keep_open_window(self, sim):
        channel = RdramChannel(sim, "ch", PIRANHA_P8.lat, PIRANHA_P8.memory)
        channel.access(0x10000)
        # advance beyond the ~1 us keep-open window
        sim.schedule(2_000_000, lambda: None)
        sim.run()
        res = channel.access(0x10040)
        assert not res.page_hit

    def test_page_open_within_window(self, sim):
        channel = RdramChannel(sim, "ch", PIRANHA_P8.lat, PIRANHA_P8.memory)
        channel.access(0x10000)
        sim.schedule(500_000, lambda: None)  # 0.5 us < 1 us
        sim.run()
        assert channel.access(0x10040).page_hit

    def test_open_page_count(self, channel):
        channel.access(0x10000)
        channel.access(0x10000 + 512)  # next device
        assert channel.open_page_count() == 2


class TestChannelOccupancy:
    def test_back_to_back_accesses_queue(self, channel):
        first = channel.access(0x10000)
        second = channel.access(0x90000)
        # second waits for the first line's 40 ns channel transfer
        assert second.critical_word_ps > first.critical_word_ps
        assert channel.c_queued.value == 1

    def test_line_transfer_time(self, channel):
        # 64 bytes over 1.6 GB/s = 40 ns
        assert channel.t_line_transfer == 40_000


class TestHitRateAccounting:
    def test_page_hit_rate(self, channel, sim):
        channel.access(0x10000)
        for i in range(1, 4):
            sim.schedule(i * 100_000, lambda: None)
            sim.run()
            channel.access(0x10000 + i * 64)
        assert channel.page_hit_rate == pytest.approx(0.75)

    def test_empty_hit_rate(self, channel):
        assert channel.page_hit_rate == 0.0


class TestMemoryController:
    def test_read_adds_engine_overhead(self, mc):
        res = mc.read_line(0x10000)
        # 60 ns DRAM + 10 ns controller/RAC overhead (P8 calibration)
        assert res.critical_word_ps == 70_000

    def test_write_counted(self, mc):
        mc.write_line(0x10000)
        assert mc.channel.c_writes.value == 1
