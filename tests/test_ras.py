"""Unit tests for the RAS extensions (§2.7)."""

import pytest

from repro.core import AccessKind, PiranhaSystem, preset
from repro.core.messages import MemRequest, RequestType
from repro.core.ras import (
    CapabilityError,
    MemoryMirror,
    PersistentMemory,
    ProtocolWatchdog,
)


@pytest.fixture
def system():
    return PiranhaSystem(preset("P2"), num_nodes=2)


def do_store(system, node, addr):
    req = MemRequest(cpu_id=0, kind=AccessKind.STORE, addr=addr,
                     is_instr=False, done=lambda l, s: None, node=node)
    req.issue_time = system.sim.now
    system.nodes[node].issue_miss(req, RequestType.READ_EXCLUSIVE)
    system.sim.run()


class TestWatchdog:
    def test_detects_timed_out_tsrf_entries(self, system):
        wd = ProtocolWatchdog(system.sim, system, timeout_ns=100.0,
                              scan_interval_ns=1000.0)
        # park a thread artificially
        engine = system.nodes[0].home_engine
        engine.tsrf.allocate(0x40, pc=0, now_ps=0)
        wd.arm()
        system.sim.schedule(10_000_000, lambda: None)
        system.sim.run()
        assert wd.c_timeouts.value >= 1
        log = system.nodes[0].syscontrol.error_log
        assert log and log[0]["kind"] == "protocol-timeout"
        assert log[0]["addr"] == 0x40

    def test_quiet_when_healthy(self, system):
        wd = ProtocolWatchdog(system.sim, system, timeout_ns=1e6)
        wd.arm()
        do_store(system, 0, 0x40)
        assert wd.c_timeouts.value == 0


class TestPersistentMemory:
    def test_capability_enforced(self, system):
        pm = PersistentMemory(system)
        pm.register_region(0x10000, 0x1000, capability=7)
        with pytest.raises(CapabilityError):
            pm.check_write(agent=1, addr=0x10040)
        pm.grant(agent=1, capability=7)
        pm.check_write(agent=1, addr=0x10040)
        assert pm.writes_checked == 2

    def test_revoke(self, system):
        pm = PersistentMemory(system)
        pm.register_region(0x10000, 0x1000, capability=7)
        pm.grant(1, 7)
        pm.revoke(1, 7)
        with pytest.raises(CapabilityError):
            pm.check_write(1, 0x10000)

    def test_outside_region_unchecked(self, system):
        pm = PersistentMemory(system)
        pm.register_region(0x10000, 0x1000, capability=7)
        pm.check_write(agent=1, addr=0x50000)  # no exception
        assert pm.writes_checked == 0

    def test_barrier_flushes_dirty_persistent_lines(self, system):
        pm = PersistentMemory(system)
        pm.register_region(0x0, 0x2000, capability=1)
        do_store(system, 0, 0x40)  # dirty line in node0's L1
        flushed = pm.barrier(0)
        assert flushed >= 1
        assert system.mem_versions.get(0x40, 0) >= 1
        assert pm.barriers == 1


class TestMemoryMirror:
    def test_writebacks_duplicated(self, system):
        mirror = MemoryMirror(system, primary=0, mirror=1)
        # force a dirty line back to node0's memory via an L2 eviction path:
        # simplest honest trigger is the chip's write-back entry point
        system.nodes[0].mem_write_back(0x40, version=3, bank_idx=1)
        assert mirror.c_mirrored == 1
        assert mirror.mirrored_lines[0x40] == 3
        assert mirror.verify()

    def test_same_node_rejected(self, system):
        with pytest.raises(ValueError):
            MemoryMirror(system, primary=0, mirror=0)
