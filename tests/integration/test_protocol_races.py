"""Directed tests for the protocol races the paper's design addresses.

Each test constructs one race from Section 2.5.3's discussion — the
forwarded-request-crosses-write-back race, the early-forward race, the
upgrade-loses-to-invalidation race, duplicate non-blocking requests — and
verifies the no-NAK guarantees hold, plus (at quiesce) that the duplicate
tags exactly mirror the L1s.
"""

import pytest

from repro.core import (
    MESI,
    AccessKind,
    CoherenceChecker,
    PiranhaSystem,
    ReplySource,
    preset,
)
from repro.core.directory import DirState
from repro.core.messages import MemRequest, request_for


@pytest.fixture
def system():
    return PiranhaSystem(preset("P2"), num_nodes=2,
                         checker=CoherenceChecker())


def issue_async(system, node, cpu, kind, addr, log):
    """Issue without draining the event queue (for racing transactions)."""
    req = MemRequest(
        cpu_id=cpu, kind=kind, addr=addr, is_instr=False,
        done=lambda lat, src: log.append((node, cpu, kind, src, lat / 1000)),
        node=node,
    )
    req.issue_time = system.sim.now
    system.nodes[node].issue_miss(req, request_for(kind, MESI.INVALID))
    return req


def issue(system, node, cpu, kind, addr):
    log = []
    issue_async(system, node, cpu, kind, addr, log)
    system.sim.run()
    return log[0]


def quiesce_checks(system):
    system.checker.verify_quiesced()
    for node in system.nodes:
        node.audit_duplicate_tags()
        assert node.home_engine.tsrf.occupancy() == 0
        assert node.remote_engine.tsrf.occupancy() == 0
        for bank in node.banks:
            assert not bank.pending
            assert not bank.wb_buffer


HOME0 = 0x0000


class TestConcurrentWritersRace:
    """Two nodes write the same line at the same instant: the home
    serialises them; both complete; one final owner."""

    def test_simultaneous_stores(self, system):
        log = []
        issue_async(system, 0, 0, AccessKind.STORE, HOME0, log)
        issue_async(system, 1, 0, AccessKind.STORE, HOME0, log)
        system.sim.run()
        assert len(log) == 2
        holders = [n for n in (0, 1)
                   if system.nodes[n].l1d[0].peek(HOME0) is not None]
        assert len(holders) == 1
        quiesce_checks(system)

    def test_store_storm_from_all_cpus(self, system):
        log = []
        for node in range(2):
            for cpu in range(2):
                issue_async(system, node, cpu, AccessKind.STORE, HOME0, log)
                issue_async(system, node, cpu, AccessKind.WH64,
                            HOME0 + 64, log)
        system.sim.run()
        assert len(log) == 8
        quiesce_checks(system)


class TestReadersDuringWrite:
    def test_reads_race_a_writer(self, system):
        log = []
        issue_async(system, 1, 0, AccessKind.STORE, HOME0, log)
        issue_async(system, 0, 0, AccessKind.LOAD, HOME0, log)
        issue_async(system, 0, 1, AccessKind.LOAD, HOME0, log)
        issue_async(system, 1, 1, AccessKind.LOAD, HOME0, log)
        system.sim.run()
        assert len(log) == 4
        # readers that completed after the writer saw version >= 1 is
        # guaranteed by the checker's monotonicity; here just quiesce
        quiesce_checks(system)


class TestWritebackRaces:
    def _dirty_then_evict(self, system, node):
        """Make node hold HOME0 dirty, then force it fully off-chip."""
        issue(system, node, 0, AccessKind.STORE, HOME0)
        chip = system.nodes[node]
        l1 = chip.l1d[0]
        stride = l1.num_sets * 64
        # evict from L1 into L2
        issue(system, node, 0, AccessKind.LOAD, HOME0 + stride)
        issue(system, node, 0, AccessKind.LOAD, HOME0 + 2 * stride)
        # force the L2 set to overflow so HOME0 is written back home
        bank = chip.bank_for(HOME0)
        l2_stride = bank.num_sets * 8 * 64
        for i in range(1, 9):
            addr = HOME0 + i * l2_stride
            issue(system, node, 0, AccessKind.STORE, addr)
            issue(system, node, 0, AccessKind.LOAD, addr + stride)
            issue(system, node, 0, AccessKind.LOAD, addr + 2 * stride)

    def test_forward_crosses_writeback(self, system):
        """A read races the owner's write-back: either the forward is
        serviced from the write-back buffer or the home answers after the
        WB lands — never a NAK, never lost data."""
        issue(system, 1, 0, AccessKind.STORE, HOME0)  # node1 owns dirty v1
        chip1 = system.nodes[1]
        l1 = chip1.l1d[0]
        stride = l1.num_sets * 64
        issue(system, 1, 0, AccessKind.LOAD, HOME0 + stride)
        issue(system, 1, 0, AccessKind.LOAD, HOME0 + 2 * stride)
        bank = chip1.bank_for(HOME0)
        log = []
        # start the L2 overflow (launches the WB) and the racing read in
        # the same event window
        l2_stride = bank.num_sets * 8 * 64
        for i in range(1, 9):
            issue_async(system, 1, 0, AccessKind.STORE,
                        HOME0 + i * l2_stride, log)
        issue_async(system, 0, 0, AccessKind.LOAD, HOME0, log)
        system.sim.run()
        # the reader got the data with the committed version
        read = [e for e in log if e[0] == 0][0]
        assert read[3] in (ReplySource.REMOTE_DIRTY, ReplySource.REMOTE_MEM,
                           ReplySource.LOCAL_MEM)
        assert system.mem_versions.get(HOME0, 0) >= 1
        quiesce_checks(system)

    def test_writeback_completes_cleanly(self, system):
        self._dirty_then_evict(system, 1)
        system.sim.run()
        assert system.mem_versions.get(HOME0, 0) >= 1
        assert system.dirstores[0].read(HOME0).state == DirState.UNCACHED
        quiesce_checks(system)


class TestUpgradeInvalidationRace:
    def test_upgrade_loses_to_remote_writer(self, system):
        """Node 0 (home) and node 1 both hold S; both upgrade at once.
        The home serialises; the loser is re-serviced with fresh data."""
        issue(system, 1, 0, AccessKind.LOAD, HOME0)
        issue(system, 0, 0, AccessKind.LOAD, HOME0)   # both share
        log = []
        issue_async(system, 0, 0, AccessKind.STORE, HOME0, log)
        issue_async(system, 1, 0, AccessKind.STORE, HOME0, log)
        system.sim.run()
        assert len(log) == 2
        quiesce_checks(system)

    def test_repeated_upgrade_fights(self, system):
        for round_ in range(5):
            log = []
            issue_async(system, 0, 0, AccessKind.LOAD, HOME0, log)
            issue_async(system, 1, 0, AccessKind.LOAD, HOME0, log)
            system.sim.run()
            log2 = []
            issue_async(system, 0, 1, AccessKind.STORE, HOME0, log2)
            issue_async(system, 1, 1, AccessKind.STORE, HOME0, log2)
            system.sim.run()
            assert len(log2) == 2
        quiesce_checks(system)


class TestNonBlockingDuplicates:
    def test_read_then_write_same_line_in_flight(self, system):
        """An OOO core can queue a store behind an outstanding load to the
        same line; the second request must upgrade the first's fill, not
        deadlock (the self-forward bug class)."""
        log = []
        issue_async(system, 1, 0, AccessKind.LOAD, HOME0, log)
        issue_async(system, 1, 0, AccessKind.STORE, HOME0, log)
        system.sim.run()
        assert len(log) == 2
        line = system.nodes[1].l1d[0].peek(HOME0)
        assert line is not None and line.state == MESI.MODIFIED
        quiesce_checks(system)

    def test_many_duplicates(self, system):
        log = []
        for _ in range(4):
            issue_async(system, 1, 0, AccessKind.LOAD, HOME0, log)
        issue_async(system, 1, 0, AccessKind.STORE, HOME0, log)
        system.sim.run()
        assert len(log) == 5
        quiesce_checks(system)


class TestDupTagMirror:
    def test_mirror_exact_after_contended_run(self, system):
        from repro.sim import substream

        rng = substream(5, "mirror")
        log = []
        for _ in range(120):
            node = rng.randrange(2)
            cpu = rng.randrange(2)
            kind = (AccessKind.STORE if rng.random() < 0.4
                    else AccessKind.LOAD)
            issue_async(system, node, cpu, kind,
                        rng.randrange(32) * 64, log)
            if rng.random() < 0.3:
                system.sim.run()
        system.sim.run()
        assert len(log) == 120
        quiesce_checks(system)
