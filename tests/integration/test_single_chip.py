"""Integration tests: whole workloads on single-chip systems."""

import pytest

from repro.core import CoherenceChecker, PiranhaSystem, preset
from repro.workloads import (
    DssParams,
    DssWorkload,
    MicroParams,
    MigratoryWrites,
    OltpParams,
    OltpWorkload,
    PrivateStream,
    SharedReadOnly,
)

SMALL_OLTP = OltpParams(transactions=20, warmup_transactions=30)
SMALL_DSS = DssParams(rows=40, warmup_rows=10)


def run(config_name, workload, nodes=1, check=True):
    checker = CoherenceChecker() if check else None
    system = PiranhaSystem(preset(config_name), num_nodes=nodes,
                           checker=checker)
    system.attach_workload(workload)
    finish = system.run_to_completion()
    if checker:
        checker.verify_quiesced()
    return system, finish


class TestOltpSingleChip:
    def test_p8_runs_to_completion_coherently(self):
        system, finish = run(
            "P8", OltpWorkload(SMALL_OLTP, cpus_per_node=8))
        assert finish > 0
        summary = system.execution_summary()
        assert summary["instructions"] > 0
        assert summary["total_ps"] > 0

    def test_breakdown_fractions_sum_to_one(self):
        system, _ = run("P4", OltpWorkload(SMALL_OLTP, cpus_per_node=4))
        s = system.execution_summary()
        total = s["busy_ps"] + s["l2_stall_ps"] + s["mem_stall_ps"]
        assert total == s["total_ps"]

    def test_oltp_exercises_all_service_classes(self):
        system, _ = run("P8", OltpWorkload(SMALL_OLTP, cpus_per_node=8))
        mb = system.miss_breakdown()
        assert mb["l2_hit"] > 0
        assert mb["l2_fwd"] > 0   # communication misses
        assert mb["l2_miss"] > 0  # memory misses

    def test_ooo_faster_than_ino_than_p1(self):
        """Figure 5's single-CPU ordering must hold even at tiny scale."""
        times = {}
        for name in ("P1", "INO", "OOO"):
            wl = OltpWorkload(SMALL_OLTP, cpus_per_node=1)
            system, _ = run(name, wl, check=False)
            times[name] = max(c.total_ps for c in system.all_cpus())
        assert times["OOO"] < times["INO"] < times["P1"]


class TestDssSingleChip:
    def test_dss_is_busy_dominated(self):
        system, _ = run("P8", DssWorkload(SMALL_DSS, cpus_per_node=8))
        s = system.execution_summary()
        assert s["busy_ps"] / s["total_ps"] > 0.7

    def test_dss_scales_nearly_linearly(self):
        per_cpu = {}
        for n in (1, 8):
            wl = DssWorkload(SMALL_DSS, cpus_per_node=n)
            system, _ = run(f"P{n}", wl, check=False)
            per_cpu[n] = max(c.total_ps for c in system.all_cpus())
        assert per_cpu[8] / per_cpu[1] < 1.1  # almost no slowdown per CPU


class TestMicrobenchmarks:
    def test_private_stream_no_sharing_traffic(self):
        system, _ = run("P4", PrivateStream(
            MicroParams(iterations=300, warmup=50), cpus_per_node=4))
        mb = system.miss_breakdown()
        assert mb["l2_fwd"] == 0

    def test_shared_read_produces_forwards(self):
        system, _ = run("P4", SharedReadOnly(
            MicroParams(iterations=300, warmup=50, lines=64), cpus_per_node=4))
        mb = system.miss_breakdown()
        assert mb["l2_fwd"] > 0

    def test_migratory_ping_pong(self):
        system, _ = run("P4", MigratoryWrites(
            MicroParams(iterations=300, warmup=50), cpus_per_node=4))
        mb = system.miss_breakdown()
        # migratory lines bounce between L1s, not through memory
        assert mb["l2_fwd"] > mb["l2_miss"]


class TestNonInclusionPayoff:
    def test_on_chip_capacity_grows_with_cpus(self):
        """§4: adding CPUs (and their L1s) in the non-inclusive hierarchy
        increases the total on-chip memory (P8 doubles P1's)."""
        resident = {}
        for n in (1, 8):
            wl = SharedReadOnly(
                MicroParams(iterations=2000, warmup=100, lines=20000),
                cpus_per_node=n)
            system, _ = run(f"P{n}", wl, check=False)
            resident[n] = system.nodes[0].on_chip_resident_bytes()
        assert resident[8] > resident[1] * 1.2
