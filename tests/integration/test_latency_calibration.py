"""Calibration tests: emergent end-to-end latencies vs Table 1.

The event-driven simulation composes module latencies, engine occupancy,
queueing and wire time; these tests assert the emergent unloaded latencies
sit on the paper's Table 1 values.
"""

import pytest

from repro.core import (
    MESI,
    AccessKind,
    PiranhaSystem,
    ReplySource,
    preset,
)
from repro.core.messages import MemRequest, request_for


def measure(system, node, cpu, kind, addr):
    out = {}

    def done(latency_ps, source):
        out["latency_ns"] = latency_ps / 1000.0
        out["source"] = source

    req = MemRequest(cpu_id=cpu, kind=kind, addr=addr, is_instr=False,
                     done=done, node=node)
    req.issue_time = system.sim.now
    system.nodes[node].issue_miss(req, request_for(kind, MESI.INVALID))
    system.sim.run()
    return out["latency_ns"], out["source"]


class TestTable1EmergentLatencies:
    def test_local_memory_80ns(self):
        system = PiranhaSystem(preset("P8"), num_nodes=1)
        latency, source = measure(system, 0, 0, AccessKind.LOAD, 0x40000)
        assert source == ReplySource.LOCAL_MEM
        assert latency == pytest.approx(80.0, abs=2.0)

    def test_l2_hit_16ns(self):
        system = PiranhaSystem(preset("P8"), num_nodes=1)
        # put the line in the L2 via an owner eviction
        measure(system, 0, 0, AccessKind.LOAD, 0x40000)
        l1 = system.nodes[0].l1d[0]
        stride = l1.num_sets * 64
        measure(system, 0, 0, AccessKind.LOAD, 0x40000 + stride)
        measure(system, 0, 0, AccessKind.LOAD, 0x40000 + 2 * stride)
        latency, source = measure(system, 0, 1, AccessKind.LOAD, 0x40000)
        assert source == ReplySource.L2_HIT
        assert latency == pytest.approx(16.0, abs=1.0)

    def test_l2_fwd_24ns(self):
        system = PiranhaSystem(preset("P8"), num_nodes=1)
        measure(system, 0, 0, AccessKind.STORE, 0x40000)
        latency, source = measure(system, 0, 1, AccessKind.LOAD, 0x40000)
        assert source == ReplySource.L2_FWD
        assert latency == pytest.approx(24.0, abs=1.0)

    def test_remote_memory_near_120ns(self):
        system = PiranhaSystem(preset("P8"), num_nodes=2)
        latency, source = measure(system, 1, 0, AccessKind.LOAD, 0x0)
        assert source == ReplySource.REMOTE_MEM
        assert latency == pytest.approx(120.0, rel=0.25)

    def test_remote_dirty_near_180ns(self):
        system = PiranhaSystem(preset("P8"), num_nodes=2)
        measure(system, 1, 0, AccessKind.STORE, 0x0)
        latency, source = measure(system, 0, 0, AccessKind.LOAD, 0x0)
        assert source == ReplySource.REMOTE_DIRTY
        assert latency == pytest.approx(180.0, rel=0.30)

    def test_latency_ordering(self):
        """hit < fwd < local memory < remote < remote dirty."""
        system = PiranhaSystem(preset("P8"), num_nodes=2)
        local, _ = measure(system, 0, 0, AccessKind.LOAD, 0x40000)
        fwd, _ = measure(system, 0, 1, AccessKind.LOAD, 0x40000)
        remote, _ = measure(system, 1, 0, AccessKind.LOAD, 0x0)
        measure(system, 1, 1, AccessKind.STORE, 0x0)     # node1 dirties it
        dirty, src = measure(system, 0, 2, AccessKind.LOAD, 0x0)
        assert src == ReplySource.REMOTE_DIRTY
        # (remote and dirty are not strictly ordered in a warm system: the
        # dirty read's directory access can be an open-page hit)
        assert fwd < local < remote
        assert fwd < local < dirty


class TestOpenPageEffect:
    def test_second_access_to_open_page_faster(self):
        system = PiranhaSystem(preset("P8"), num_nodes=1)
        first, _ = measure(system, 0, 0, AccessKind.LOAD, 0x80000)
        # +512 B: same L2 bank / same memory channel, same open DRAM page
        second, _ = measure(system, 0, 0, AccessKind.LOAD, 0x80200)
        assert second == pytest.approx(first - 20.0, abs=2.0)  # 60 -> 40 ns
