"""Integration tests: assembled programs on the timing simulator."""

import pytest

from repro.core import CoherenceChecker, PiranhaSystem, preset
from repro.isa import (
    SharedMemory,
    consumer,
    make_isa_workload,
    memcpy_wh64,
    producer,
    spinlock_increment,
    vector_sum,
)

LOCK, COUNTER = 0x4000, 0x4080
BUF, FLAG = 0x5000, 0x5080


def run_programs(programs, config="P4", nodes=1, memory=None):
    workload, cpus, mem = make_isa_workload(programs, memory=memory)
    checker = CoherenceChecker()
    system = PiranhaSystem(preset(config), num_nodes=nodes, checker=checker)
    system.attach_workload(workload)
    finish = system.run_to_completion()
    checker.verify_quiesced()
    return system, cpus, mem, finish


class TestSpinlock:
    def test_four_cpus_serialise_correctly(self):
        programs = {(0, c): spinlock_increment(LOCK, COUNTER, 20)
                    for c in range(4)}
        system, cpus, mem, _ = run_programs(programs)
        assert mem.load_q(COUNTER) == 80

    def test_lock_contention_produces_communication(self):
        programs = {(0, c): spinlock_increment(LOCK, COUNTER, 15)
                    for c in range(4)}
        system, _, mem, _ = run_programs(programs)
        assert system.miss_breakdown()["l2_fwd"] > 0

    def test_across_nodes(self):
        programs = {(n, c): spinlock_increment(LOCK, COUNTER, 8)
                    for n in range(2) for c in range(2)}
        system, _, mem, _ = run_programs(programs, config="P2", nodes=2)
        assert mem.load_q(COUNTER) == 32
        assert any(n.c_packets_sent.value for n in system.nodes)


class TestProducerConsumer:
    def test_message_passes(self):
        programs = {
            (0, 0): producer(BUF, FLAG, 1234),
            (0, 1): consumer(BUF, FLAG),
        }
        _, cpus, mem, _ = run_programs(programs)
        assert cpus[(0, 1)].state.regs[5] == 1234

    def test_across_nodes(self):
        programs = {
            (0, 0): producer(BUF, FLAG, 77),
            (1, 0): consumer(BUF, FLAG),
        }
        _, cpus, mem, _ = run_programs(programs, config="P1", nodes=2)
        assert cpus[(1, 0)].state.regs[5] == 77


class TestKernels:
    def test_vector_sum_timing_matches_functional(self):
        mem = SharedMemory()
        for i in range(64):
            mem.store_q(0x6000 + i * 8, i * 3)
        programs = {(0, 0): vector_sum(0x6000, 64)}
        _, cpus, _, finish = run_programs(programs, memory=mem)
        assert cpus[(0, 0)].state.regs[1] == sum(i * 3 for i in range(64))
        assert finish > 0

    def test_memcpy_wh64_issues_write_hints(self):
        mem = SharedMemory()
        for i in range(64):
            mem.store_q(0x6000 + i * 8, 0xBEEF + i)
        programs = {(0, 0): memcpy_wh64(0x6000, 0x7000, 8)}
        system, _, mem, _ = run_programs(programs, memory=mem)
        for i in range(64):
            assert mem.load_q(0x7000 + i * 8) == 0xBEEF + i
        assert system.nodes[0].cpus[0].c_wh64.value == 8

    def test_wh64_faster_than_plain_copy(self):
        """The write hint skips fetching destination lines: fewer memory
        stalls than a load/store-only copy."""
        def copy_no_hint(src, dst, lines):
            from repro.isa import assemble

            return assemble(f"""
                lda   r1, {src}(r31)
                lda   r2, {dst}(r31)
                lda   r3, {lines}(r31)
            line:
                lda   r4, 8(r31)
            qw:
                ldq   r5, 0(r1)
                stq   r5, 0(r2)
                lda   r1, 8(r1)
                lda   r2, 8(r2)
                subq  r4, #1, r4
                bne   r4, qw
                subq  r3, #1, r3
                bne   r3, line
                halt
            """)

        def time_copy(prog):
            mem = SharedMemory()
            for i in range(16 * 8):
                mem.store_q(0x6000 + i * 8, i)
            _, _, _, finish = run_programs({(0, 0): prog}, memory=mem)
            return finish

        with_hint = time_copy(memcpy_wh64(0x6000, 0x7800, 16))
        without = time_copy(copy_no_hint(0x6000, 0x7800, 16))
        assert with_hint < without
