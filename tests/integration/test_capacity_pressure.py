"""Tests for the architecture's bounded resources under pressure.

The TSRFs (16 entries/engine) and the per-bank pending tables (16
entries) are hard architectural bounds; when they fill, input stalls —
never drops, never NAKs.  These tests overcommit both and verify every
transaction still completes.
"""

import pytest

from repro.core import (
    MESI,
    AccessKind,
    CoherenceChecker,
    PiranhaSystem,
    preset,
)
from repro.core.messages import MemRequest, request_for
from repro.workloads.base import WorkloadThread


def fire(system, node, cpu, kind, addr, log):
    req = MemRequest(cpu_id=cpu, kind=kind, addr=addr, is_instr=False,
                     done=lambda lat, src: log.append((node, addr)),
                     node=node)
    req.issue_time = system.sim.now
    system.nodes[node].issue_miss(req, request_for(kind, MESI.INVALID))


class TestTsrfExhaustion:
    def test_home_engine_overcommit(self):
        """Five requester nodes each firing eight distinct-line requests at
        one home: far more concurrent home transactions than 16 TSRF
        entries; the input controller stalls and drains them all."""
        checker = CoherenceChecker()
        system = PiranhaSystem(preset("P8"), num_nodes=5, checker=checker)
        log = []
        count = 0
        for node in range(1, 5):
            for cpu in range(8):
                # lines homed at node 0, all distinct, same bank spread
                addr = (cpu * 4 + node) * 64
                fire(system, node, cpu, AccessKind.STORE, addr, log)
                count += 1
        system.sim.run()
        assert len(log) == count
        he = system.nodes[0].home_engine
        # Request-class messages stall once free entries drop to the
        # reserved pool (kept for completion-class messages, §2.5.1's
        # deadlock-avoidance discipline), so a pure request flood tops
        # out at TSRF_ENTRIES - TSRF_RESERVED.
        from repro.core.protocol_engine import TSRF_RESERVED
        from repro.core.tsrf import TSRF_ENTRIES

        assert he.tsrf.high_water == TSRF_ENTRIES - TSRF_RESERVED
        assert he.c_tsrf_stalls.value > 0        # and input stalled
        assert he.tsrf.occupancy() == 0          # and fully drained
        checker.verify_quiesced()

    def test_stalled_queue_preserves_requests(self):
        system = PiranhaSystem(preset("P4"), num_nodes=2)
        log = []
        n = 40
        for i in range(n):
            fire(system, 1, i % 4, AccessKind.LOAD, i * 64, log)
        system.sim.run()
        assert len(log) == n
        assert not system.nodes[0].home_engine.stalled


class TestPendingTableOverflow:
    def test_bank_overflow_queue(self):
        """More concurrent distinct-line misses to one bank than its 16
        pending entries: the overflow queue holds and replays them."""
        system = PiranhaSystem(preset("P8"), num_nodes=1,
                               checker=CoherenceChecker())
        log = []
        # 24 distinct lines all mapping to bank 0 (stride 8 lines)
        for i in range(24):
            fire(system, 0, i % 8, AccessKind.LOAD, i * 8 * 64, log)
        system.sim.run()
        assert len(log) == 24
        bank = system.nodes[0].banks[0]
        assert not bank.pending and not bank.overflow
        system.checker.verify_quiesced()

    def test_sixteen_tsrf_is_architectural(self):
        from repro.core.tsrf import TSRF_ENTRIES

        assert TSRF_ENTRIES == 16  # §2.5.1; CMI's buffering bound needs it


class TestSaturationWorkload:
    def test_all_cpus_hammering_one_bank(self):
        """Worst-case bank pressure: every CPU missing into bank 0
        continuously; throughput degrades but nothing wedges."""
        system = PiranhaSystem(preset("P8"), num_nodes=1,
                               checker=CoherenceChecker())

        def thread(cpu):
            def gen():
                for i in range(120):
                    # distinct bank-0 lines per cpu
                    yield (1, AccessKind.LOAD,
                           (cpu * 1024 + i) * 8 * 64, True)
            return WorkloadThread(gen())

        for cpu, core in enumerate(system.nodes[0].cpus):
            core.attach(thread(cpu))
        system.run_to_completion()
        system.checker.verify_quiesced()
        system.nodes[0].audit_duplicate_tags()
        bank = system.nodes[0].banks[0]
        assert bank.c_requests.value == 8 * 120
