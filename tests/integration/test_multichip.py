"""Integration tests: glueless multi-chip systems (Figure 3, §2.5/2.6)."""

import pytest

from repro.core import CoherenceChecker, PiranhaSystem, preset
from repro.core.ras import ProtocolWatchdog
from repro.sim import substream
from repro.workloads import MicroParams, OltpParams, OltpWorkload, UniformRandom
from repro.workloads.base import WorkloadThread
from repro.core.messages import AccessKind


def checked_run(config, nodes, workload):
    checker = CoherenceChecker()
    system = PiranhaSystem(preset(config), num_nodes=nodes, checker=checker)
    system.attach_workload(workload)
    finish = system.run_to_completion()
    checker.verify_quiesced()
    return system, finish


class TestOltpAcrossNodes:
    def test_two_node_p2(self):
        wl = OltpWorkload(OltpParams(transactions=15, warmup_transactions=20),
                          cpus_per_node=2, num_nodes=2)
        system, finish = checked_run("P2", 2, wl)
        # remote traffic actually happened
        assert any(n.c_packets_sent.value > 0 for n in system.nodes)
        # every CPU's work finished
        assert all(c.finished for c in system.all_cpus())

    def test_four_node_p1(self):
        wl = OltpWorkload(OltpParams(transactions=10, warmup_transactions=15),
                          cpus_per_node=1, num_nodes=4)
        system, _ = checked_run("P1", 4, wl)
        # both engines saw work somewhere
        assert sum(n.home_engine.c_threads.value for n in system.nodes) > 0
        assert sum(n.remote_engine.c_threads.value for n in system.nodes) > 0


class TestContendedSharing:
    def _hot_line_workload(self, nodes, cpus, iters=250, seed=11):
        class W:
            def thread_for(self, node, cpu):
                rng = substream(seed, node, cpu)

                def gen():
                    for _ in range(iters):
                        line = rng.randrange(24) * 64
                        r = rng.random()
                        if r < 0.45:
                            yield (2, AccessKind.STORE, line, True)
                        elif r < 0.55:
                            yield (2, AccessKind.WH64, line, True)
                        else:
                            yield (2, AccessKind.LOAD, line, True)

                return WorkloadThread(gen())

        return W()

    def test_heavy_write_sharing_two_nodes(self):
        system, _ = checked_run("P2", 2, self._hot_line_workload(2, 2))
        assert system.sim.events_fired > 0

    def test_heavy_write_sharing_four_nodes(self):
        system, _ = checked_run("P2", 4, self._hot_line_workload(4, 2))

    def test_no_tsrf_leaks(self):
        system, _ = checked_run("P2", 2, self._hot_line_workload(2, 2))
        for node in system.nodes:
            assert node.home_engine.tsrf.occupancy() == 0
            assert node.remote_engine.tsrf.occupancy() == 0

    def test_no_lingering_wb_buffers(self):
        system, _ = checked_run("P2", 2, self._hot_line_workload(2, 2))
        for node in system.nodes:
            for bank in node.banks:
                assert not bank.pending
                assert not bank.overflow


class TestProtocolProperties:
    def test_watchdog_sees_no_timeouts_in_healthy_run(self):
        checker = CoherenceChecker()
        system = PiranhaSystem(preset("P2"), num_nodes=2, checker=checker)
        wd = ProtocolWatchdog(system.sim, system, timeout_ns=500_000.0)
        wl = OltpWorkload(OltpParams(transactions=10, warmup_transactions=10),
                          cpus_per_node=2, num_nodes=2)
        system.attach_workload(wl)
        wd.arm()
        system.run_to_completion()
        checker.verify_quiesced()
        assert wd.c_timeouts.value == 0

    def test_engine_occupancy_reported(self):
        wl = OltpWorkload(OltpParams(transactions=10, warmup_transactions=10),
                          cpus_per_node=2, num_nodes=2)
        system, _ = checked_run("P2", 2, wl)
        for node in system.nodes:
            he = node.home_engine
            if he.c_threads.value:
                assert he.a_occupancy.mean > 0

    def test_uniform_random_multinode(self):
        wl = UniformRandom(MicroParams(iterations=200, warmup=40, lines=512),
                           cpus_per_node=2, num_nodes=2)
        checked_run("P2", 2, wl)


class TestDeterminism:
    def test_identical_runs_produce_identical_timing(self):
        def one_run():
            wl = OltpWorkload(
                OltpParams(transactions=8, warmup_transactions=8),
                cpus_per_node=2, num_nodes=2)
            system = PiranhaSystem(preset("P2"), num_nodes=2)
            system.attach_workload(wl)
            finish = system.run_to_completion()
            return finish, system.sim.events_fired

        assert one_run() == one_run()
