"""Unit tests for the performance-monitoring report."""

import pytest

from repro.core import PiranhaSystem, preset
from repro.harness.perfmon import node_report, render_report, system_report
from repro.workloads import MicroParams, MigratoryWrites, OltpParams, OltpWorkload


@pytest.fixture
def run_system():
    system = PiranhaSystem(preset("P2"), num_nodes=2)
    wl = OltpWorkload(OltpParams(transactions=8, warmup_transactions=10),
                      cpus_per_node=2, num_nodes=2)
    system.attach_workload(wl)
    system.run_to_completion()
    return system


class TestNodeReport:
    def test_structure(self, run_system):
        report = node_report(run_system.nodes[0])
        assert report["node"] == "node0"
        assert len(report["cpus"]) == 2
        assert {"requests", "hits", "fwds", "mem"} <= set(report["l2"])
        assert {"he", "re"} == set(report["engines"])

    def test_counts_consistent(self, run_system):
        report = node_report(run_system.nodes[0])
        l2 = report["l2"]
        # service classes cannot exceed requests
        assert l2["hits"] + l2["fwds"] + l2["mem"] <= l2["requests"]

    def test_cpu_metrics(self, run_system):
        report = node_report(run_system.nodes[0])
        for cpu in report["cpus"]:
            assert cpu["instructions"] > 0
            assert 0.0 <= cpu["l1_miss_rate"] <= 1.0
            assert 0.0 <= cpu["busy_frac"] <= 1.0


class TestSystemReport:
    def test_one_report_per_node(self, run_system):
        reports = system_report(run_system)
        assert [r["node"] for r in reports] == ["node0", "node1"]

    def test_render(self, run_system):
        text = render_report(system_report(run_system))
        assert "node0" in text and "node1" in text
        assert "L2 requests" in text
        assert "he threads/instrs" in text

    def test_engines_active_multinode(self, run_system):
        reports = system_report(run_system)
        total_threads = sum(
            eng["threads"]
            for r in reports for eng in r["engines"].values()
        )
        assert total_threads > 0


class TestZeroActivity:
    """A freshly built system that never ran must still report cleanly:
    no division-by-zero from zero instruction/request counts, and every
    rate pinned at zero."""

    def test_report_on_idle_system(self):
        system = PiranhaSystem(preset("P2"), num_nodes=2)
        reports = system_report(system)
        assert [r["node"] for r in reports] == ["node0", "node1"]
        for report in reports:
            for cpu in report["cpus"]:
                assert cpu["instructions"] == 0
                assert cpu["l1_miss_rate"] == 0.0
                assert cpu["busy_frac"] == 0.0
            assert report["l2"]["requests"] == 0
            for eng in report["engines"].values():
                assert eng["threads"] == 0

    def test_never_updated_counters_report_explicit_zero(self):
        # An engine whose TSRF never held a thread must still expose the
        # time-weighted occupancy key — as 0.0, not as a missing key —
        # whether or not the caller closes the window with now_ps.
        system = PiranhaSystem(preset("P2"), num_nodes=2)
        for report in (node_report(system.nodes[0]),
                       node_report(system.nodes[0], now_ps=1_000_000)):
            for eng in report["engines"].values():
                assert eng["tsrf_mean_occupancy"] == 0.0
                assert eng["tsrf_high_water"] == 0
                assert eng["tsrf_stalls"] == 0

    def test_engine_key_set_stable_with_and_without_now(self, run_system):
        # S2 contract: the same key set comes back regardless of window
        # closing, so report diffing never sees keys appear/disappear.
        plain = node_report(run_system.nodes[0])
        windowed = node_report(run_system.nodes[0],
                               now_ps=run_system.sim.now)
        for name in plain["engines"]:
            assert (set(plain["engines"][name])
                    == set(windowed["engines"][name]))

    def test_render_on_idle_system(self):
        system = PiranhaSystem(preset("P1"), num_nodes=1)
        text = render_report(system_report(system))
        assert "node0" in text
        assert "L2 requests" in text
