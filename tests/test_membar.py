"""Tests for Alpha MB semantics over eager exclusive replies (§2.5.3).

The protocol grants exclusive ownership *before* all invalidations
complete; the invalidation acknowledgements are gathered at the requesting
node, and a memory barrier is what orders subsequent accesses after them.
"""

import pytest

from repro.core import (
    MESI,
    AccessKind,
    CoherenceChecker,
    PiranhaSystem,
    preset,
)
from repro.core.messages import MemRequest, request_for
from repro.workloads.base import WorkloadThread


@pytest.fixture
def system():
    return PiranhaSystem(preset("P2"), num_nodes=2,
                         checker=CoherenceChecker())


def prime_sharers(system, addr):
    """Give both nodes shared copies of *addr* (homed at node 0)."""
    for node in (1, 0):
        done = []
        req = MemRequest(cpu_id=0, kind=AccessKind.LOAD, addr=addr,
                         is_instr=False, done=lambda l, s: done.append(1),
                         node=node)
        req.issue_time = system.sim.now
        system.nodes[node].issue_miss(req, request_for(AccessKind.LOAD,
                                                       MESI.INVALID))
        system.sim.run()


class TestFenceSemantics:
    def test_membar_waits_for_inval_acks(self, system):
        prime_sharers(system, 0x0)
        # node 0's cpu1: store (eager grant with remote sharers) then MB
        cpu = system.nodes[0].cpus[1]
        cpu.attach(WorkloadThread(iter([
            (1, AccessKind.STORE, 0x0, True),
            (1, AccessKind.MEMBAR, 0, True),
            (10, None, 0, True),
        ])))
        cpu.start()
        system.sim.run()
        assert cpu.finished
        assert cpu.c_membar.value == 1
        # the fence observed outstanding acks and waited for them
        assert cpu.fence_stall_ps > 0
        # afterwards nothing is pending
        assert not system.nodes[0]._pending_acks
        system.checker.verify_quiesced()

    def test_membar_free_when_nothing_pending(self, system):
        cpu = system.nodes[0].cpus[0]
        cpu.attach(WorkloadThread(iter([
            (100, None, 0, True),
            (1, AccessKind.MEMBAR, 0, True),
            (100, None, 0, True),
        ])))
        cpu.start()
        system.sim.run()
        assert cpu.finished
        assert cpu.fence_stall_ps == 0

    def test_fence_time_separate_from_stall_buckets(self, system):
        prime_sharers(system, 0x0)
        cpu = system.nodes[0].cpus[1]
        cpu.attach(WorkloadThread(iter([
            (1, AccessKind.STORE, 0x0, True),
            (1, AccessKind.MEMBAR, 0, True),
        ])))
        cpu.start()
        system.sim.run()
        assert cpu.total_ps == (cpu.busy_ps + sum(cpu.stall_ps.values())
                                + cpu.fence_stall_ps)

    def test_ooo_membar_drains_streaming_misses(self):
        system = PiranhaSystem(preset("OOO"), num_nodes=1)
        cpu = system.nodes[0].cpus[0]
        items = [(10, AccessKind.LOAD, i * 64, False) for i in range(4)]
        items.append((1, AccessKind.MEMBAR, 0, True))
        items.append((10, None, 0, True))
        cpu.attach(WorkloadThread(iter(items), ilp=2.0))
        cpu.start()
        system.sim.run()
        assert cpu.finished
        assert cpu.outstanding == 0
        assert cpu.c_membar.value == 1


class TestIsaMb:
    def test_mb_roundtrip(self):
        from repro.isa import Instruction, Mnemonic, decode, encode

        instr = Instruction(Mnemonic.MB)
        assert decode(encode(instr)) == instr

    def test_mb_through_timing_simulator(self):
        from repro.isa import assemble, make_isa_workload

        programs = {(0, 0): assemble("""
            lda  r1, 0x1000(r31)
            stq  r2, 0(r1)
            mb
            stq  r2, 8(r1)
            halt
        """)}
        workload, cpus, _ = make_isa_workload(programs)
        system = PiranhaSystem(preset("P1"), num_nodes=1)
        system.attach_workload(workload)
        system.run_to_completion()
        assert system.nodes[0].cpus[0].c_membar.value == 1
