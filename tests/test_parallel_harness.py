"""Tests for the parallel experiment harness and the result caches.

Covers the PR's acceptance criteria:

* a multi-point sweep run with ``jobs=4`` produces records identical to
  the serial sweep (determinism across the process-pool boundary),
* the disk cache serves repeat points bit-for-bit and invalidates when
  the configuration changes,
* the in-process memo is inspectable and disableable via
  ``REPRO_NO_CACHE=1``, with hit/miss telemetry in ``RunResult.extras``,
* ``replace_field`` rejects malformed / unknown field paths.
"""

import dataclasses
import os

import pytest

from repro.core import preset
from repro.harness import (
    DiskCache,
    Job,
    MigratoryFactory,
    OltpFactory,
    clear_cache,
    memo_cache_info,
    resolve_jobs,
    run_jobs,
    run_workload,
)
from repro.harness.cache import result_key, workload_token
from repro.harness.runner import DISK_CACHE, run_configured, simulate
from repro.harness.sweep import replace_field, sweep_field
from repro.workloads import MicroParams, OltpParams

TINY_OLTP = OltpParams(transactions=6, warmup_transactions=8)
TINY_MICRO = MicroParams(iterations=120, warmup=30)


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Every test gets an empty memo and a private disk-cache directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    clear_cache()
    yield
    clear_cache()


def micro_jobs(n=4):
    values = [(128 + 64 * i) << 10 for i in range(n)]
    base = preset("P2")
    return [
        Job(config=dataclasses.replace(
                replace_field(base, "l2.size_bytes", v),
                name=f"P2[l2={v}]"),
            factory=MigratoryFactory(TINY_MICRO),
            units_attr="iterations")
        for v in values
    ]


class TestParallelEquivalence:
    def test_parallel_sweep_matches_serial(self):
        """Acceptance: jobs=4 sweep identical to the serial records."""
        values = [(128 + 64 * i) << 10 for i in range(6)]
        factory = MigratoryFactory(TINY_MICRO)

        os.environ["REPRO_NO_CACHE"] = "1"  # force both runs to simulate
        try:
            serial = sweep_field("P2", factory, "l2.size_bytes", values,
                                 units_attr="iterations", jobs=1)
            parallel = sweep_field("P2", factory, "l2.size_bytes", values,
                                   units_attr="iterations", jobs=4)
        finally:
            del os.environ["REPRO_NO_CACHE"]
        assert parallel == serial

    def test_run_jobs_preserves_input_order(self):
        jobs = micro_jobs(4)
        results = run_jobs(jobs, jobs=4)
        assert [r.config for r in results] == [j.config.name for j in jobs]

    def test_parallel_payload_matches_direct_simulate(self):
        job = micro_jobs(1)[0]
        direct = simulate(job.config, job.factory,
                          units_attr=job.units_attr)
        # single-point lists run serially; use a 2-point pool so the
        # first result genuinely crossed the process boundary
        pooled, _ = run_jobs(micro_jobs(2), jobs=2)
        assert pooled.payload_tuple() == direct.payload_tuple()

    def test_unpicklable_factory_falls_back_to_serial(self):
        params = TINY_MICRO

        def closure_factory(config, num_nodes):  # not picklable
            from repro.workloads import MigratoryWrites
            return MigratoryWrites(params, cpus_per_node=config.cpus,
                                   num_nodes=num_nodes)

        base = micro_jobs(2)
        jobs = [dataclasses.replace(base[0], factory=closure_factory),
                dataclasses.replace(base[1], factory=closure_factory)]
        results = run_jobs(jobs, jobs=4)
        reference = run_jobs(micro_jobs(2), jobs=1)
        assert [r.payload_tuple() for r in results] == \
               [r.payload_tuple() for r in reference]

    def test_sanitizer_extras_survive_process_pool(self, monkeypatch):
        """check_coherence=True jobs carry the sanitizer telemetry back
        across the ProcessPool boundary in ``RunResult.extras``, matching
        the serial run exactly."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        jobs = [dataclasses.replace(j, check_coherence=True,
                                    trace_capacity=256)
                for j in micro_jobs(2)]
        direct = simulate(jobs[0].config, jobs[0].factory,
                          units_attr=jobs[0].units_attr,
                          check_coherence=True, trace_capacity=256)
        pooled, _ = run_jobs(jobs, jobs=2)
        sanitizer_keys = [k for k in pooled.extras
                          if not k.startswith("cache_")]
        assert "audit_quiesced" in sanitizer_keys
        assert "checker_fills" in sanitizer_keys
        assert "trace_events" in sanitizer_keys
        assert {k: pooled.extras[k] for k in sanitizer_keys} == \
               {k: direct.extras[k] for k in sanitizer_keys}

    def test_resolve_jobs(self, monkeypatch):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.setenv("REPRO_JOBS", "junk")
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == (os.cpu_count() or 1)


class TestDiskCache:
    def test_hit_serves_identical_payload(self):
        job = micro_jobs(1)[0]
        first = run_configured(job.config, job.factory,
                               units_attr=job.units_attr)
        clear_cache()  # drop the memo: the next lookup must hit the disk
        hits_before = DISK_CACHE.hits
        second = run_configured(job.config, job.factory,
                                units_attr=job.units_attr)
        assert DISK_CACHE.hits == hits_before + 1
        assert second.payload_tuple() == first.payload_tuple()

    def test_config_change_invalidates(self):
        jobs = micro_jobs(2)  # two points differing only in L2 size
        key_a = result_key(jobs[0].config, jobs[0].factory, 1,
                           jobs[0].units_attr, False, ())
        key_b = result_key(jobs[1].config, jobs[1].factory, 1,
                           jobs[1].units_attr, False, ())
        assert key_a != key_b
        run_configured(jobs[0].config, jobs[0].factory,
                       units_attr=jobs[0].units_attr)
        clear_cache()
        hits_before = DISK_CACHE.hits
        run_configured(jobs[1].config, jobs[1].factory,
                       units_attr=jobs[1].units_attr)
        assert DISK_CACHE.hits == hits_before  # different point: no hit

    def test_scale_env_part_of_key(self, monkeypatch):
        job = micro_jobs(1)[0]
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        key_full = result_key(job.config, job.factory, 1, job.units_attr,
                              False, ())
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        key_quarter = result_key(job.config, job.factory, 1, job.units_attr,
                                 False, ())
        assert key_full != key_quarter

    def test_opaque_factory_not_disk_keyable(self):
        assert workload_token(lambda c, n: None) is None
        job = micro_jobs(1)[0]
        assert result_key(job.config, lambda c, n: None, 1,
                          job.units_attr, False, ()) is None

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path / "torn"))
        job = micro_jobs(1)[0]
        key = result_key(job.config, job.factory, 1, job.units_attr,
                         False, ())
        result = simulate(job.config, job.factory, units_attr=job.units_attr)
        cache.put(key, result)
        target = cache._file(key)
        with open(target, "w", encoding="utf-8") as f:
            f.write('{"result": {"config"')  # truncated JSON
        assert cache.get(key) is None

    def test_info_and_clear(self):
        job = micro_jobs(1)[0]
        run_configured(job.config, job.factory, units_attr=job.units_attr)
        info = DISK_CACHE.info()
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert DISK_CACHE.clear() == 1
        assert DISK_CACHE.info()["entries"] == 0


class TestMemoCache:
    def test_memo_inspectable_and_counts_hits(self):
        job = micro_jobs(1)[0]
        before = memo_cache_info()
        run_configured(job.config, job.factory, units_attr=job.units_attr)
        result = run_configured(job.config, job.factory,
                                units_attr=job.units_attr)
        info = memo_cache_info()
        assert info["entries"] == before["entries"] + 1
        assert info["hits"] > before["hits"]
        assert len(info["keys"]) == info["entries"]
        assert result.extras["cache_memo_hits"] == float(info["hits"])
        assert "cache_memo_misses" in result.extras
        assert "cache_disk_hits" in result.extras

    def test_no_cache_env_disables_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        job = micro_jobs(1)[0]
        entries_before = memo_cache_info()["entries"]
        a = run_configured(job.config, job.factory, units_attr=job.units_attr)
        b = run_configured(job.config, job.factory, units_attr=job.units_attr)
        assert memo_cache_info()["entries"] == entries_before
        assert DISK_CACHE.info()["entries"] == 0
        # ... but determinism still holds without the caches
        assert a.payload_tuple() == b.payload_tuple()

    def test_run_workload_legacy_entry_point_memoises(self):
        result = run_workload("P1", MigratoryFactory(TINY_MICRO),
                              units_attr="iterations",
                              cache_key_extra=("legacy",))
        again = run_workload("P1", MigratoryFactory(TINY_MICRO),
                             units_attr="iterations",
                             cache_key_extra=("legacy",))
        assert again.payload_tuple() == result.payload_tuple()
        assert result.config == "P1"


class TestReplaceFieldErrors:
    def test_deep_nesting_rejected(self):
        with pytest.raises(ValueError, match="one level"):
            replace_field(preset("P8"), "l2.bank.size", 1)

    def test_empty_component_rejected(self):
        for bad in ("", ".", "l2.", ".size_bytes"):
            with pytest.raises(ValueError):
                replace_field(preset("P8"), bad, 1)

    def test_unknown_top_level_field(self):
        with pytest.raises(ValueError, match="unknown config field"):
            replace_field(preset("P8"), "no_such_field", 1)

    def test_unknown_group(self):
        with pytest.raises(ValueError, match="unknown config group"):
            replace_field(preset("P8"), "no_group.size_bytes", 1)

    def test_non_dataclass_group(self):
        with pytest.raises(ValueError, match="unknown config group"):
            replace_field(preset("P8"), "name.size_bytes", 1)

    def test_unknown_leaf_lists_alternatives(self):
        with pytest.raises(ValueError, match="size_bytes"):
            replace_field(preset("P8"), "l2.no_leaf", 1)

    def test_valid_replacements_still_work(self):
        config = replace_field(preset("P8"), "l2.size_bytes", 2 << 20)
        assert config.l2.size_bytes == 2 << 20
        config = replace_field(preset("P8"), "cpus", 4)
        assert config.cpus == 4


class TestLibraryFingerprint:
    """The source fingerprint must cover every subpackage — a change to
    ``repro/fuzz/`` or ``repro/checkpoint/`` has to invalidate cached
    results and warm checkpoints exactly like a change to the core."""

    def _tree(self, tmp_path, extra=None):
        root = tmp_path / "pkg"
        (root / "fuzz").mkdir(parents=True)
        (root / "checkpoint").mkdir()
        (root / "__init__.py").write_text("x = 1\n")
        (root / "fuzz" / "runner.py").write_text("y = 2\n")
        (root / "checkpoint" / "store.py").write_text("z = 3\n")
        if extra:
            path, text = extra
            (root / path).write_text(text)
        return str(root)

    def test_subpackage_edit_changes_fingerprint(self, tmp_path):
        from repro.harness.cache import library_fingerprint

        base = library_fingerprint(root=self._tree(tmp_path))
        for sub in ("fuzz/runner.py", "checkpoint/store.py",
                    "__init__.py"):
            edited = library_fingerprint(
                root=self._tree(tmp_path / sub.replace("/", "_"),
                                extra=(sub, "changed = True\n")))
            assert edited != base, f"edit to {sub} not fingerprinted"

    def test_new_subpackage_file_changes_fingerprint(self, tmp_path):
        from repro.harness.cache import library_fingerprint

        base = library_fingerprint(root=self._tree(tmp_path))
        grown = library_fingerprint(
            root=self._tree(tmp_path / "grown",
                            extra=("checkpoint/new_module.py", "n = 4\n")))
        assert grown != base

    def test_non_python_files_ignored(self, tmp_path):
        from repro.harness.cache import library_fingerprint

        base = library_fingerprint(root=self._tree(tmp_path))
        same = library_fingerprint(
            root=self._tree(tmp_path / "same",
                            extra=("checkpoint/readme.txt", "doc\n")))
        assert same == base

    def test_fingerprint_stable(self, tmp_path):
        from repro.harness.cache import library_fingerprint

        tree = self._tree(tmp_path)
        assert library_fingerprint(root=tree) == \
            library_fingerprint(root=tree)

    def test_live_fingerprint_memoised(self):
        from repro.harness.cache import library_fingerprint

        assert library_fingerprint() == library_fingerprint()
