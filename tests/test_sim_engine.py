"""Unit tests for the discrete-event engine and clock domains."""

import pytest

from repro.sim import Clock, Simulator, ns
from repro.sim.engine import Component


class TestClock:
    def test_piranha_asic_period(self):
        assert Clock(500).period_ps == 2000

    def test_ooo_period(self):
        assert Clock(1000).period_ps == 1000

    def test_full_custom_period(self):
        assert Clock(1250).period_ps == 800

    def test_cycles(self):
        assert Clock(500).cycles(3) == 6000

    def test_fractional_cycles(self):
        assert Clock(500).cycles(1.5) == 3000

    def test_next_edge_aligned(self):
        assert Clock(500).next_edge(4000) == 4000

    def test_next_edge_unaligned(self):
        assert Clock(500).next_edge(4001) == 6000

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Clock(0)


class TestNsConversion:
    def test_integral(self):
        assert ns(80) == 80_000

    def test_fractional(self):
        assert ns(1.5) == 1500


class TestSimulator:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(300, fired.append, "c")
        sim.schedule(100, fired.append, "a")
        sim.schedule(200, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_time_events_fire_fifo(self, sim):
        fired = []
        for tag in range(10):
            sim.schedule(50, fired.append, tag)
        sim.run()
        assert fired == list(range(10))

    def test_now_advances(self, sim):
        times = []
        sim.schedule(100, lambda: times.append(sim.now))
        sim.schedule(250, lambda: times.append(sim.now))
        sim.run()
        assert times == [100, 250]

    def test_cancel(self, sim):
        fired = []
        handle = sim.schedule(100, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cannot_schedule_into_past(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_run_until(self, sim):
        fired = []
        sim.schedule(100, fired.append, 1)
        sim.schedule(500, fired.append, 2)
        sim.run(until_ps=200)
        assert fired == [1]
        assert sim.now == 200
        sim.run()
        assert fired == [1, 2]

    def test_max_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_chained_scheduling(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 4:
                sim.schedule(10, chain, n + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        assert sim.now == 40

    def test_events_fired_counter(self, sim):
        for i in range(7):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_fired == 7

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False


class TestComponent:
    def test_component_has_stats_and_schedule(self, sim):
        comp = Component(sim, "test.module")
        fired = []
        comp.schedule(100, fired.append, 1)
        sim.run()
        assert fired == [1]
        assert comp.name == "test.module"
        comp.stats.counter("x").inc()
        assert comp.stats.counter("x").value == 1

    def test_component_now(self, sim):
        comp = Component(sim, "c")
        seen = []
        comp.schedule(123, lambda: seen.append(comp.now))
        sim.run()
        assert seen == [123]
