"""Unit tests for the discrete-event engine and clock domains."""

import pytest

from repro.sim import Clock, Simulator, ns
from repro.sim.engine import Component


class TestClock:
    def test_piranha_asic_period(self):
        assert Clock(500).period_ps == 2000

    def test_ooo_period(self):
        assert Clock(1000).period_ps == 1000

    def test_full_custom_period(self):
        assert Clock(1250).period_ps == 800

    def test_cycles(self):
        assert Clock(500).cycles(3) == 6000

    def test_fractional_cycles(self):
        assert Clock(500).cycles(1.5) == 3000

    def test_next_edge_aligned(self):
        assert Clock(500).next_edge(4000) == 4000

    def test_next_edge_unaligned(self):
        assert Clock(500).next_edge(4001) == 6000

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Clock(0)


class TestNsConversion:
    def test_integral(self):
        assert ns(80) == 80_000

    def test_fractional(self):
        assert ns(1.5) == 1500


class TestSimulator:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(300, fired.append, "c")
        sim.schedule(100, fired.append, "a")
        sim.schedule(200, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_time_events_fire_fifo(self, sim):
        fired = []
        for tag in range(10):
            sim.schedule(50, fired.append, tag)
        sim.run()
        assert fired == list(range(10))

    def test_now_advances(self, sim):
        times = []
        sim.schedule(100, lambda: times.append(sim.now))
        sim.schedule(250, lambda: times.append(sim.now))
        sim.run()
        assert times == [100, 250]

    def test_cancel(self, sim):
        fired = []
        handle = sim.schedule(100, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cannot_schedule_into_past(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_run_until(self, sim):
        fired = []
        sim.schedule(100, fired.append, 1)
        sim.schedule(500, fired.append, 2)
        sim.run(until_ps=200)
        assert fired == [1]
        assert sim.now == 200
        sim.run()
        assert fired == [1, 2]

    def test_max_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_chained_scheduling(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 4:
                sim.schedule(10, chain, n + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        assert sim.now == 40

    def test_events_fired_counter(self, sim):
        for i in range(7):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_fired == 7

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False


class TestCancellation:
    def test_pending_excludes_cancelled(self, sim):
        handles = [sim.schedule(10 * (i + 1), lambda: None) for i in range(5)]
        assert sim.pending == 5
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending == 3
        assert sim.events_cancelled == 2

    def test_double_cancel_counts_once(self, sim):
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.events_cancelled == 1
        assert sim.pending == 0

    def test_cancel_after_fire_is_noop(self, sim):
        handle = sim.schedule(10, lambda: None)
        sim.run()
        handle.cancel()
        assert sim.events_cancelled == 0
        assert sim.pending == 0

    def test_compaction_drops_dead_entries(self, sim):
        keep = []
        handles = [sim.schedule(i + 1, keep.append, i) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        # compaction fired once dead entries reached half the queue
        # (at the 100th cancel), so the heap holds fewer than the 200
        # scheduled entries, and never more than live + post-compact dead
        assert len(sim._queue) == 100
        assert sim.pending == 50
        assert sim.events_cancelled == 150
        sim.run()
        assert keep == list(range(150, 200))  # order preserved exactly

    def test_compaction_preserves_fifo_at_equal_times(self, sim):
        fired = []
        handles = [sim.schedule(100, fired.append, i) for i in range(100)]
        for handle in handles[:80:2]:
            handle.cancel()
        for handle in handles[1:80:2]:
            handle.cancel()
        sim.run()
        assert fired == list(range(80, 100))

    def test_cancel_during_same_timestamp_drain(self, sim):
        fired = []
        victim = sim.schedule(60, fired.append, "victim")
        sim.schedule(50, victim.cancel)
        sim.schedule(60, fired.append, "survivor")
        sim.run()
        assert fired == ["survivor"]
        assert sim.events_cancelled == 1

    def test_cancel_same_timestamp_later_event(self, sim):
        # a callback cancels a not-yet-fired event at its own timestamp:
        # the drain loop must skip the dead entry
        fired = []
        sim.schedule(50, lambda: victim.cancel())
        victim = sim.schedule(50, fired.append, "victim")
        sim.schedule(50, fired.append, "survivor")
        sim.run()
        assert fired == ["survivor"]


class TestRunBounds:
    def test_until_edge_event_at_boundary_fires(self, sim):
        fired = []
        sim.schedule(200, fired.append, "edge")
        sim.schedule(201, fired.append, "past")
        sim.run(until_ps=200)
        assert fired == ["edge"]
        assert sim.now == 200

    def test_until_with_empty_tail_keeps_last_event_time(self, sim):
        sim.schedule(50, lambda: None)
        sim.run(until_ps=500)
        # queue drained before the horizon: now stays at the last event
        assert sim.now == 50

    def test_max_events_within_same_timestamp_batch(self, sim):
        fired = []
        for i in range(6):
            sim.schedule(100, fired.append, i)
        assert sim.run(max_events=4) == 4
        assert fired == [0, 1, 2, 3]
        assert sim.run() == 2
        assert fired == list(range(6))

    def test_until_and_max_combined(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(10 * (i + 1), fired.append, i)
        sim.run(until_ps=35, max_events=2)
        assert fired == [0, 1]
        sim.run(until_ps=35)
        assert fired == [0, 1, 2]
        assert sim.now == 35

    def test_cancelled_events_do_not_count_toward_max(self, sim):
        fired = []
        handle = sim.schedule(10, fired.append, "dead")
        sim.schedule(20, fired.append, "a")
        sim.schedule(30, fired.append, "b")
        handle.cancel()
        sim.run(max_events=2)
        assert fired == ["a", "b"]

    def test_same_timestamp_rescheduling_stays_fifo(self, sim):
        fired = []

        def fires_and_schedules(tag):
            fired.append(tag)
            if tag == "first":
                sim.schedule(0, fired.append, "nested")

        sim.schedule(100, fires_and_schedules, "first")
        sim.schedule(100, fires_and_schedules, "second")
        sim.run(until_ps=100)
        assert fired == ["first", "second", "nested"]


class TestComponent:
    def test_component_has_stats_and_schedule(self, sim):
        comp = Component(sim, "test.module")
        fired = []
        comp.schedule(100, fired.append, 1)
        sim.run()
        assert fired == [1]
        assert comp.name == "test.module"
        comp.stats.counter("x").inc()
        assert comp.stats.counter("x").value == 1

    def test_component_now(self, sim):
        comp = Component(sim, "c")
        seen = []
        comp.schedule(123, lambda: seen.append(comp.now))
        sim.run()
        assert seen == [123]
