"""Unit tests for the input/output queues (§2.6.2)."""

import pytest

from repro.interconnect import InputQueue, OutputQueue, Packet, PacketType, PriorityFifos
from repro.sim import Simulator


def pkt(prio=1, ptype=PacketType.READ, dst=0):
    return Packet(ptype, src=0, dst=dst, priority=prio)


class TestPriorityFifos:
    def test_higher_priority_pops_first(self):
        q = PriorityFifos(8)
        q.push(pkt(0))
        q.push(pkt(3))
        q.push(pkt(1))
        assert q.pop_highest().priority == 3
        assert q.pop_highest().priority == 1
        assert q.pop_highest().priority == 0

    def test_fifo_within_priority(self):
        q = PriorityFifos(8)
        first, second = pkt(2), pkt(2)
        q.push(first)
        q.push(second)
        assert q.pop_highest() is first
        assert q.pop_highest() is second

    def test_capacity(self):
        q = PriorityFifos(2)
        assert q.push(pkt())
        assert q.push(pkt())
        assert not q.push(pkt())
        assert q.full

    def test_pop_first_with_predicate(self):
        q = PriorityFifos(8)
        high = pkt(3)
        low = pkt(0)
        q.push(high)
        q.push(low)
        got = q.pop_first(lambda p: p.priority < 2)
        assert got is low

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PriorityFifos(0)


class TestOutputQueue:
    def test_offer_and_pop(self):
        sim = Simulator()
        oq = OutputQueue(sim, "oq", capacity=4)
        assert oq.offer(pkt(1))
        assert oq.offer(pkt(3))
        assert oq.pop().priority == 3

    def test_rejects_when_full(self):
        sim = Simulator()
        oq = OutputQueue(sim, "oq", capacity=1)
        assert oq.offer(pkt())
        assert not oq.offer(pkt())
        assert oq.c_rejected.value == 1

    def test_router_kick(self):
        sim = Simulator()
        oq = OutputQueue(sim, "oq")
        kicks = []
        oq.attach_router(lambda: kicks.append(1))
        oq.offer(pkt())
        assert kicks == [1]


class TestInputQueue:
    def test_disposition_vector_steers_by_type(self):
        sim = Simulator()
        iq = InputQueue(sim, "iq")
        got = {"read": [], "ctl": []}
        iq.set_disposition(PacketType.READ, lambda p: got["read"].append(p) or True)
        iq.set_disposition(PacketType.CONTROL, lambda p: got["ctl"].append(p) or True)
        iq.receive(pkt(ptype=PacketType.READ))
        iq.receive(pkt(ptype=PacketType.CONTROL))
        sim.run()
        assert len(got["read"]) == 1 and len(got["ctl"]) == 1

    def test_default_disposition_covers_all_types(self):
        """After reset everything is forwarded to the system controller."""
        sim = Simulator()
        iq = InputQueue(sim, "iq")
        got = []
        iq.set_default_disposition(lambda p: got.append(p) or True)
        for ptype in PacketType:
            iq.receive(pkt(ptype=ptype))
        sim.run()
        assert len(got) == len(PacketType)

    def test_low_priority_bypasses_blocked_high(self):
        """§2.6.2: low-priority traffic may bypass blocked high-priority
        traffic when its own destination can accept it."""
        sim = Simulator()
        iq = InputQueue(sim, "iq")
        delivered = []

        class BlockedHandler:
            def __call__(self, p):
                delivered.append(("high", p))
                return True

            def can_accept(self, p):
                return False  # high-priority destination is blocked

        iq.set_disposition(PacketType.DATA_REPLY, BlockedHandler())
        iq.set_disposition(PacketType.READ,
                           lambda p: delivered.append(("low", p)) or True)
        iq.receive(pkt(prio=3, ptype=PacketType.DATA_REPLY))
        iq.receive(pkt(prio=0, ptype=PacketType.READ))
        sim.run(until_ps=10_000)
        kinds = [k for k, _ in delivered]
        assert "low" in kinds          # the bypass happened
        assert "high" not in kinds     # still blocked
        assert iq.c_bypassed.value >= 1

    def test_full_iq_refuses(self):
        sim = Simulator()
        iq = InputQueue(sim, "iq", capacity=1)
        iq.set_default_disposition(lambda p: True)
        assert iq.receive(pkt())
        assert not iq.receive(pkt())
