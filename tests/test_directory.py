"""Unit tests for the in-ECC directory (§2.5.2)."""

import pytest

from repro.core.directory import (
    DIRECTORY_BITS,
    MAX_POINTERS,
    DirectoryEntry,
    DirectoryStore,
    DirState,
    add_sharer,
    coarse_group,
    coarse_members,
    decode,
    ecc_accounting,
    encode,
    make_exclusive,
)

N = 1024  # node count used throughout (the paper's 1K-node scale)


class TestEccAccounting:
    def test_44_bits_freed_per_line(self):
        """ECC at 256-bit instead of 64-bit granularity frees 44 bits per
        64-byte line: 8x8 - 2x10."""
        acc = ecc_accounting()
        assert acc["ecc_bits_64b_granularity"] == 64
        assert acc["ecc_bits_256b_granularity"] == 20
        assert acc["freed_bits_per_line"] == 44
        assert DIRECTORY_BITS == 44


class TestLimitedPointer:
    def test_roundtrip_up_to_four_sharers(self):
        for count in range(1, MAX_POINTERS + 1):
            sharers = frozenset(range(100, 100 + count))
            entry = DirectoryEntry(DirState.SHARED, sharers, None)
            out = decode(encode(entry, N), N)
            assert out.state == DirState.SHARED
            assert out.sharers == sharers

    def test_switch_at_four_remote_sharers(self):
        """§2.5.2: past 4 remote sharing nodes, switch to coarse vector."""
        entry = DirectoryEntry.uncached()
        for node in range(MAX_POINTERS):
            entry = add_sharer(entry, node * 10, N)
            assert entry.state == DirState.SHARED
        entry = add_sharer(entry, 999, N)
        assert entry.state == DirState.SHARED_COARSE

    def test_pointer_overflow_rejected(self):
        entry = DirectoryEntry(DirState.SHARED, frozenset(range(5)), None)
        with pytest.raises(ValueError):
            encode(entry, N)

    def test_node_zero_representable(self):
        entry = DirectoryEntry(DirState.SHARED, frozenset({0}), None)
        assert decode(encode(entry, N), N).sharers == frozenset({0})


class TestCoarseVector:
    def test_decode_is_superset(self):
        """Coarse vectors over-approximate: decoding yields every node the
        set bits cover (real coarse vectors over-invalidate)."""
        sharers = frozenset({0, 100, 500, 900, 1023})
        entry = DirectoryEntry(DirState.SHARED_COARSE, sharers, None)
        out = decode(encode(entry, N), N)
        assert out.sharers >= sharers
        # covered nodes share coarse groups with true sharers
        groups = {coarse_group(s, N) for s in sharers}
        assert all(coarse_group(s, N) in groups for s in out.sharers)

    def test_groups_partition_nodes(self):
        seen = set()
        for bit in range(42):
            members = coarse_members(bit, N)
            assert not (seen & set(members))
            seen.update(members)
        assert seen == set(range(N))


class TestExclusive:
    def test_roundtrip(self):
        entry = make_exclusive(777)
        out = decode(encode(entry, N), N)
        assert out.state == DirState.EXCLUSIVE
        assert out.owner == 777

    def test_owner_required(self):
        entry = DirectoryEntry(DirState.EXCLUSIVE, frozenset({1}), None)
        with pytest.raises(ValueError):
            encode(entry, N)


class TestUncached:
    def test_roundtrip(self):
        out = decode(encode(DirectoryEntry.uncached(), N), N)
        assert out.state == DirState.UNCACHED
        assert out.sharers == frozenset()


class TestBitBudget:
    def test_encoding_fits_44_bits(self):
        entries = [
            DirectoryEntry.uncached(),
            make_exclusive(1023),
            DirectoryEntry(DirState.SHARED, frozenset({0, 511, 1023}), None),
            DirectoryEntry(DirState.SHARED_COARSE,
                           frozenset(range(0, 1024, 7)), None),
        ]
        for entry in entries:
            assert 0 <= encode(entry, N) < (1 << DIRECTORY_BITS)


class TestDirectoryStore:
    def test_default_uncached(self):
        store = DirectoryStore(0, N)
        assert store.read(0x1000).state == DirState.UNCACHED

    def test_write_read(self):
        store = DirectoryStore(0, N)
        store.write(0x1000, make_exclusive(5))
        assert store.read(0x1000).owner == 5
        assert store.reads == 1 and store.writes == 1

    def test_uncached_write_clears(self):
        store = DirectoryStore(0, N)
        store.write(0x1000, make_exclusive(5))
        store.write(0x1000, DirectoryEntry.uncached())
        assert store.read(0x1000).state == DirState.UNCACHED

    def test_representation_limits_enforced(self):
        """The store round-trips through the 44-bit codec, so a too-wide
        limited-pointer entry is rejected exactly as hardware would be
        unable to represent it."""
        store = DirectoryStore(0, N)
        with pytest.raises(ValueError):
            store.write(0x0, DirectoryEntry(DirState.SHARED,
                                            frozenset(range(6)), None))
