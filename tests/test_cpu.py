"""Unit tests for the CPU core models."""

import pytest

from repro.core import AccessKind, CoherenceChecker, PiranhaSystem, preset
from repro.core.cpu import WARMUP_DONE, InOrderCpu, OooCpu, make_cpu
from repro.workloads.base import WorkloadThread


def run_items(config_name, items, ilp=1.0):
    system = PiranhaSystem(preset(config_name), num_nodes=1)
    cpu = system.nodes[0].cpus[0]
    cpu.attach(WorkloadThread(iter(items), ilp=ilp))
    system.start()
    system.sim.run()
    assert cpu.finished
    return system, cpu


class TestFactory:
    def test_inorder_for_piranha(self):
        system = PiranhaSystem(preset("P1"), num_nodes=1)
        assert isinstance(system.nodes[0].cpus[0], InOrderCpu)

    def test_ooo_for_baseline(self):
        system = PiranhaSystem(preset("OOO"), num_nodes=1)
        assert isinstance(system.nodes[0].cpus[0], OooCpu)


class TestInOrderTiming:
    def test_pure_compute_time(self):
        # 1000 instructions at 500 MHz = 2000 ns
        _, cpu = run_items("P1", [(1000, None, 0, True)])
        assert cpu.busy_ps == 2_000_000
        assert cpu.total_ps == 2_000_000

    def test_l1_hit_folded_into_busy(self):
        items = [(10, AccessKind.LOAD, 0x40, True)] * 5
        _, cpu = run_items("P1", items)
        # first access misses; the remaining four hit and add no stall
        assert cpu.misses == 1
        assert cpu.refs == 5

    def test_miss_stalls_full_latency(self):
        _, cpu = run_items("P1", [(0, AccessKind.LOAD, 0x40, True)])
        assert cpu.stall_memory_ps == pytest.approx(80_000, abs=2_000)

    def test_breakdown_buckets(self):
        system, cpu0 = run_items("P1", [(0, AccessKind.LOAD, 0x40, True)])
        assert cpu0.stall_on_chip_ps == 0
        assert cpu0.stall_memory_ps > 0

    def test_instruction_count(self):
        _, cpu = run_items("P1", [(7, AccessKind.LOAD, 0x40, True)] * 3)
        assert cpu.instructions == 21


class TestOooTiming:
    def test_issue_width_scales_busy(self):
        # ilp 4 on a 4-issue core at 1 GHz: 1000 instrs in 250 ns
        _, cpu = run_items("OOO", [(1000, None, 0, True)], ilp=4.0)
        assert cpu.busy_ps == pytest.approx(250_000, abs=1000)

    def test_ilp_limits_issue(self):
        # workload ILP 1.0 means no speedup from width
        _, cpu = run_items("OOO", [(1000, None, 0, True)], ilp=1.0)
        assert cpu.busy_ps == pytest.approx(1_000_000, abs=1000)

    def test_dependent_miss_partially_hidden(self):
        _, cpu = run_items("OOO", [(0, AccessKind.LOAD, 0x40, True)])
        # 80 ns miss, 6 ns window overlap
        assert cpu.stall_memory_ps == pytest.approx(74_000, abs=2_000)

    def test_streaming_misses_fully_overlap(self):
        # independent loads to distinct lines: stall ~0
        items = [(50, AccessKind.LOAD, i * 64, False) for i in range(16)]
        _, cpu = run_items("OOO", items)
        assert cpu.stall_memory_ps == 0
        assert cpu.misses == 16

    def test_mshr_limit_blocks_streaming(self):
        # no compute between misses: more than max_outstanding in flight
        # forces the extra ones onto the dependent path
        items = [(0, AccessKind.LOAD, i * 64, False) for i in range(32)]
        _, cpu = run_items("OOO", items)
        assert cpu.stall_memory_ps > 0


class TestWarmupMarker:
    def test_marker_resets_accounting(self):
        items = (
            [(100, AccessKind.LOAD, i * 64, True) for i in range(8)]
            + [(0, None, WARMUP_DONE, True)]
            + [(50, None, 0, True)]
        )
        system, cpu = run_items("P1", items)
        # after the marker only the 50-instruction tail is accounted
        assert cpu.instructions == 50
        assert cpu.busy_ps == 100_000
        assert cpu.misses == 0

    def test_system_resets_module_stats(self):
        items = (
            [(0, AccessKind.LOAD, 0x40, True)]
            + [(0, None, WARMUP_DONE, True)]
            + [(10, None, 0, True)]
        )
        system, cpu = run_items("P1", items)
        bank = system.nodes[0].bank_for(0x40)
        assert bank.c_requests.value == 0  # reset at warm-up


class TestStallAttribution:
    def test_sources_separated(self):
        system = PiranhaSystem(preset("P8"), num_nodes=1,
                               checker=CoherenceChecker())
        node = system.nodes[0]
        # cpu0 writes a line, cpu1 reads it (fwd), then a cold line (mem)
        node.cpus[0].attach(WorkloadThread(iter(
            [(0, AccessKind.STORE, 0x40, True)])))
        node.cpus[1].attach(WorkloadThread(iter(
            [(500, None, 0, True),
             (0, AccessKind.LOAD, 0x40, True),
             (0, AccessKind.LOAD, 0x9000, True)])))
        system.start()
        system.sim.run()
        cpu1 = node.cpus[1]
        assert cpu1.stall_on_chip_ps > 0    # the forward
        assert cpu1.stall_memory_ps > 0     # the cold miss
        system.checker.verify_quiesced()
