"""Unit tests for the workload models."""

import pytest

from repro.core import AccessKind
from repro.core.cpu import WARMUP_DONE
from repro.sim import substream
from repro.workloads import (
    DssParams,
    DssWorkload,
    MigratoryWrites,
    NodeShards,
    OltpParams,
    OltpWorkload,
    PrivateStream,
    Region,
    SharedReadOnly,
    TpccWorkload,
    ZipfSampler,
)
from repro.workloads.base import AddressSpaceBuilder, CodeWalk


class TestZipfSampler:
    def test_rank_zero_hottest(self):
        z = ZipfSampler(100, alpha=1.0)
        counts = [0] * 100
        rng = substream(1, "zipf")
        for _ in range(5000):
            counts[z.sample(rng.random())] += 1
        assert counts[0] > counts[50] > 0

    def test_uniform_at_alpha_zero(self):
        z = ZipfSampler(10, alpha=0.0)
        rng = substream(2, "zipf")
        counts = [0] * 10
        for _ in range(10000):
            counts[z.sample(rng.random())] += 1
        assert max(counts) < 2 * min(counts)

    def test_bounds(self):
        z = ZipfSampler(5, alpha=0.8)
        assert z.sample(0.0) == 0
        assert z.sample(0.999999) == 4
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)


class TestAddressSpaceBuilder:
    def test_regions_disjoint(self):
        b = AddressSpaceBuilder()
        r1 = b.region("a", 100)
        r2 = b.region("b", 100)
        b.validate()
        assert r1.end <= r2.base

    def test_region_line_addresses(self):
        b = AddressSpaceBuilder()
        r = b.region("x", 10)
        assert r.line_addr(0) == r.base
        assert r.line_addr(9) == r.base + 9 * 64
        with pytest.raises(IndexError):
            r.line_addr(10)


class TestCodeWalk:
    def test_runs_are_sequential_lines(self):
        b = AddressSpaceBuilder()
        region = b.region("code", 600)
        walk = CodeWalk(region, substream(3, "cw"), run_lines=6)
        items = walk.run()
        assert len(items) == 6
        addrs = [a for _, _, a, _ in items]
        assert all(b - a == 64 for a, b in zip(addrs, addrs[1:]))
        assert all(k == AccessKind.IFETCH for _, k, _, _ in items)

    def test_addresses_within_region(self):
        b = AddressSpaceBuilder()
        region = b.region("code", 60)
        walk = CodeWalk(region, substream(3, "cw"))
        for _ in range(50):
            for _, _, addr, _ in walk.run():
                assert region.base <= addr < region.end


class TestNodeShards:
    def test_shards_partition_chunks(self):
        region = Region("r", 0, 1024)  # 8 chunks
        shards = NodeShards(region, 4)
        all_chunks = [c for n in range(4) for c in shards.local_chunks(n)]
        assert sorted(all_chunks) == list(range(8))

    def test_sample_line_is_local(self):
        region = Region("r", 0, 1024)
        shards = NodeShards(region, 4)
        rng = substream(5, "ns")
        from repro.mem.addr import AddressMap

        amap = AddressMap(4)
        for node in range(4):
            for _ in range(20):
                line = shards.sample_line(rng, node)
                addr = region.line_addr(line)
                assert amap.home_of(addr) == node

    def test_local_line_cursor(self):
        region = Region("r", 0, 1024)
        shards = NodeShards(region, 4)
        from repro.mem.addr import AddressMap

        amap = AddressMap(4)
        for i in range(300):
            addr = region.line_addr(shards.local_line(2, i))
            assert amap.home_of(addr) == 2


class TestOltpWorkload:
    def test_deterministic(self):
        a = list(OltpWorkload(OltpParams(transactions=3, warmup_transactions=1),
                              cpus_per_node=1).thread_for(0, 0))
        b = list(OltpWorkload(OltpParams(transactions=3, warmup_transactions=1),
                              cpus_per_node=1).thread_for(0, 0))
        assert a == b

    def test_warmup_marker_present(self):
        items = list(OltpWorkload(
            OltpParams(transactions=2, warmup_transactions=1),
            cpus_per_node=1).thread_for(0, 0))
        markers = [i for i in items if i[1] is None and i[2] == WARMUP_DONE]
        assert len(markers) == 1

    def test_out_of_range_cpu_gets_none(self):
        wl = OltpWorkload(cpus_per_node=2, num_nodes=1)
        assert wl.thread_for(0, 5) is None
        assert wl.thread_for(1, 0) is None

    def test_contains_all_tpcb_steps(self):
        wl = OltpWorkload(OltpParams(transactions=4, warmup_transactions=0),
                          cpus_per_node=1)
        items = list(wl.thread_for(0, 0))
        regions_touched = set()
        for _, kind, addr, _ in items:
            if kind is None:
                continue
            for r in wl.space.regions:
                if r.base <= addr < r.end:
                    regions_touched.add(r.name)
        assert {"code", "account", "branch", "teller", "history",
                "log", "metadata", "private", "index"} <= regions_touched

    def test_wh64_used_for_history(self):
        wl = OltpWorkload(OltpParams(transactions=4, warmup_transactions=0),
                          cpus_per_node=1)
        kinds = {k for _, k, _, _ in wl.thread_for(0, 0) if k is not None}
        assert AccessKind.WH64 in kinds

    def test_low_ilp(self):
        assert OltpWorkload().ilp < 1.6


class TestDssWorkload:
    def test_partitions_disjoint(self):
        wl = DssWorkload(DssParams(rows=5, warmup_rows=0), cpus_per_node=4)
        streams = [
            {a for _, k, a, _ in wl.thread_for(0, c)
             if k == AccessKind.LOAD and a >= wl.table.base}
            for c in range(4)
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (streams[i] & streams[j])

    def test_scan_is_sequential(self):
        wl = DssWorkload(DssParams(rows=8, warmup_rows=0), cpus_per_node=1)
        addrs = [a for _, k, a, _ in wl.thread_for(0, 0)
                 if k == AccessKind.LOAD and a >= wl.table.base]
        assert addrs == sorted(addrs)

    def test_mostly_streaming(self):
        wl = DssWorkload(DssParams(rows=50, warmup_rows=0), cpus_per_node=1)
        loads = [(d) for _, k, _, d in wl.thread_for(0, 0)
                 if k == AccessKind.LOAD]
        streaming = sum(1 for d in loads if not d)
        assert streaming / len(loads) > 0.6

    def test_higher_ilp_than_oltp(self):
        assert DssWorkload().ilp > OltpWorkload().ilp


class TestTpccWorkload:
    def test_heavier_than_tpcb(self):
        tpcc = TpccWorkload().params
        tpcb = OltpParams()
        assert tpcc.code_runs_per_txn > tpcb.code_runs_per_txn
        assert tpcc.metadata_accesses_per_txn > tpcb.metadata_accesses_per_txn

    def test_lowest_ilp(self):
        assert TpccWorkload().ilp < OltpWorkload().ilp


class TestMicrobenchmarks:
    def test_private_stream_disjoint(self):
        wl = PrivateStream(cpus_per_node=2)
        a = {addr for _, k, addr, _ in wl.thread_for(0, 0) if k}
        b = {addr for _, k, addr, _ in wl.thread_for(0, 1) if k}
        assert not (a & b)

    def test_shared_read_overlaps(self):
        wl = SharedReadOnly(cpus_per_node=2)
        a = {addr for _, k, addr, _ in wl.thread_for(0, 0) if k}
        b = {addr for _, k, addr, _ in wl.thread_for(0, 1) if k}
        assert a & b

    def test_migratory_reads_and_writes(self):
        wl = MigratoryWrites(cpus_per_node=1)
        kinds = {k for _, k, _, _ in wl.thread_for(0, 0) if k}
        assert AccessKind.LOAD in kinds and AccessKind.STORE in kinds
