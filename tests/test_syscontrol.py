"""Unit tests for the system controller (§2 / §2.6)."""

import pytest

from repro.core import PiranhaSystem, preset
from repro.core.syscontrol import (
    REG_CPU_ENABLE,
    REG_ERROR_LOG,
    REG_INTERRUPT_PENDING,
    REG_NODE_ID,
)
from repro.interconnect import Packet, PacketType


@pytest.fixture
def system():
    return PiranhaSystem(preset("P2"), num_nodes=2)


class TestRegisters:
    def test_node_id_register(self, system):
        assert system.nodes[0].syscontrol.read_register(REG_NODE_ID) == 0
        assert system.nodes[1].syscontrol.read_register(REG_NODE_ID) == 1

    def test_cpu_enable_default(self, system):
        sc = system.nodes[0].syscontrol
        assert sc.read_register(REG_CPU_ENABLE) == 0b11  # both CPUs

    def test_write_register(self, system):
        sc = system.nodes[0].syscontrol
        sc.write_register(0x42, 1234)
        assert sc.read_register(0x42) == 1234

    def test_unknown_register_reads_zero(self, system):
        assert system.nodes[0].syscontrol.read_register(0x99) == 0


class TestControlPackets:
    def test_remote_register_write(self, system):
        pkt = Packet(PacketType.CONTROL, src=1, dst=0,
                     info={"op": "write_reg", "reg": 0x50, "value": 7})
        system.nodes[0].deliver_packet(pkt)
        assert system.nodes[0].syscontrol.read_register(0x50) == 7

    def test_remote_register_read_replies(self, system):
        system.nodes[0].syscontrol.write_register(0x50, 99)
        pkt = Packet(PacketType.CONTROL, src=1, dst=0,
                     info={"op": "read_reg", "reg": 0x50})
        system.nodes[0].deliver_packet(pkt)
        system.sim.run()
        # the reply landed at node 1's system controller
        sc1 = system.nodes[1].syscontrol
        assert sc1.c_control.value == 1

    def test_init_packet(self, system):
        pkt = Packet(PacketType.CONTROL, src=0, dst=1,
                     info={"op": "init", "num_nodes": 2})
        system.nodes[1].deliver_packet(pkt)
        assert system.nodes[1].syscontrol.initialized


class TestInterrupts:
    def test_local_interrupt(self, system):
        sc = system.nodes[0].syscontrol
        sc.raise_interrupt(0, vector=5)
        assert sc.c_interrupts.value == 1
        assert sc.read_register(REG_INTERRUPT_PENDING) & (1 << 5)

    def test_cross_node_interrupt(self, system):
        system.nodes[0].syscontrol.raise_interrupt(1, vector=3)
        system.sim.run()
        sc1 = system.nodes[1].syscontrol
        assert sc1.c_interrupts.value == 1
        assert sc1.read_register(REG_INTERRUPT_PENDING) & (1 << 3)


class TestErrorLog:
    def test_log_error(self, system):
        sc = system.nodes[0].syscontrol
        sc.log_error({"kind": "test", "detail": 42})
        assert sc.read_register(REG_ERROR_LOG) == 1
        assert sc.error_log[0]["kind"] == "test"
        assert "time_ps" in sc.error_log[0]
