"""Unit tests for the inclusive-L2 ablation mode (§2.3's road not taken)."""

import dataclasses

import pytest

from repro.core import (
    MESI,
    AccessKind,
    CoherenceChecker,
    PiranhaSystem,
    ReplySource,
    preset,
)
from repro.core.messages import MemRequest, request_for
from repro.workloads import MicroParams, OltpParams, OltpWorkload, UniformRandom


def inclusive_config(name="P8"):
    cfg = preset(name)
    return dataclasses.replace(
        cfg, l2=dataclasses.replace(cfg.l2, inclusive=True))


def issue(system, cpu, kind, addr):
    out = {}

    def done(lat, src):
        out["src"] = src

    req = MemRequest(cpu_id=cpu, kind=kind, addr=addr, is_instr=False,
                     done=done, node=0)
    req.issue_time = system.sim.now
    system.nodes[0].issue_miss(req, request_for(kind, MESI.INVALID))
    system.sim.run()
    return out["src"]


LINE = 0x40_0000


class TestInclusionSemantics:
    def test_memory_fill_allocates_in_l2(self):
        system = PiranhaSystem(inclusive_config(), num_nodes=1)
        issue(system, 0, AccessKind.LOAD, LINE)
        bank = system.nodes[0].bank_for(LINE)
        assert bank._l2_line(LINE) is not None  # unlike Piranha's policy

    def test_l2_eviction_invalidates_l1_copies(self):
        system = PiranhaSystem(inclusive_config(), num_nodes=1,
                               checker=CoherenceChecker())
        issue(system, 0, AccessKind.LOAD, LINE)
        bank = system.nodes[0].bank_for(LINE)
        l2_stride = bank.num_sets * 8 * 64
        # overflow the set: LINE's L2 copy is displaced, and inclusion
        # enforcement must kill the L1 copy too
        for i in range(1, 9):
            issue(system, 0, AccessKind.LOAD, LINE + i * l2_stride)
        assert bank._l2_line(LINE) is None
        assert system.nodes[0].l1d[0].peek(LINE) is None
        system.checker.verify_quiesced()
        system.nodes[0].audit_duplicate_tags()

    def test_silently_modified_data_recovered_on_eviction(self):
        system = PiranhaSystem(inclusive_config(), num_nodes=1,
                               checker=CoherenceChecker())
        issue(system, 0, AccessKind.LOAD, LINE)   # E grant, L2 keeps copy
        # silent E->M store (no coherence traffic)
        l1 = system.nodes[0].l1d[0]
        assert l1.lookup(LINE, AccessKind.STORE).hit
        bank = system.nodes[0].bank_for(LINE)
        l2_stride = bank.num_sets * 8 * 64
        for i in range(1, 9):
            issue(system, 0, AccessKind.LOAD, LINE + i * l2_stride)
        # the silently-written version must have reached memory
        assert system.mem_versions.get(LINE, 0) >= 1

    def test_coherent_under_contention(self):
        checker = CoherenceChecker()
        system = PiranhaSystem(inclusive_config("P4"), num_nodes=1,
                               checker=checker)
        system.attach_workload(UniformRandom(
            MicroParams(iterations=400, warmup=50, lines=4096),
            cpus_per_node=4))
        system.run_to_completion()
        checker.verify_quiesced()
        system.nodes[0].audit_duplicate_tags()


class TestAblationOutcome:
    def test_noninclusive_beats_inclusive_on_oltp(self):
        params = OltpParams(transactions=15, warmup_transactions=25)

        def run(cfg):
            system = PiranhaSystem(cfg, num_nodes=1)
            system.attach_workload(OltpWorkload(params, cpus_per_node=8))
            system.run_to_completion()
            return max(c.total_ps for c in system.all_cpus())

        t_non = run(preset("P8"))
        t_inc = run(inclusive_config())
        assert t_non < t_inc  # the paper's design choice wins
