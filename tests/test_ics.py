"""Unit tests for the intra-chip switch (§2.2)."""

import pytest

from repro.core import PIRANHA_P8
from repro.core.ics import BYTES_PER_CYCLE, DATAPATHS, LANE_HIGH, LANE_LOW, IntraChipSwitch
from repro.sim import Simulator


@pytest.fixture
def ics(sim):
    return IntraChipSwitch(sim, "ics", PIRANHA_P8)


class TestTransferDelay:
    def test_base_latency(self, ics):
        # unloaded: configured ICS crossing latency (2 ns on P8)
        assert ics.transfer_delay(16) == 2000

    def test_delay_independent_of_size_when_unloaded(self, ics):
        assert ics.transfer_delay(64) == 2000

    def test_invalid_size(self, ics):
        with pytest.raises(ValueError):
            ics.transfer_delay(0)

    def test_invalid_lane(self, ics):
        with pytest.raises(ValueError):
            ics.transfer_delay(8, lane=2)


class TestOccupancy:
    def test_datapaths_fill_before_queueing(self, ics):
        # 8 datapaths: the first 8 concurrent transfers see no queueing
        delays = [ics.transfer_delay(64) for _ in range(DATAPATHS)]
        assert all(d == 2000 for d in delays)
        # the 9th queues behind the earliest-free datapath
        assert ics.transfer_delay(64) > 2000
        assert ics.c_conflicts.value == 1

    def test_serialisation_time(self, ics):
        # 64 bytes at 8 bytes/cycle = 8 cycles of occupancy
        for _ in range(DATAPATHS):
            ics.transfer_delay(64)
        ninth = ics.transfer_delay(64)
        assert ninth == 2000 + 8 * 2000  # wait one full transfer


class TestAccounting:
    def test_lane_counters(self, ics):
        ics.transfer_delay(8, LANE_LOW)
        ics.transfer_delay(8, LANE_HIGH)
        ics.transfer_delay(8, LANE_HIGH)
        assert ics.c_lane[LANE_LOW].value == 1
        assert ics.c_lane[LANE_HIGH].value == 2

    def test_bytes_counted(self, ics):
        ics.transfer_delay(64)
        ics.transfer_delay(16)
        assert ics.c_bytes.value == 80

    def test_utilization(self, ics, sim):
        assert ics.utilization() == 0.0
        ics.transfer_delay(64)
        sim.schedule(100000, lambda: None)
        sim.run()
        assert 0.0 < ics.utilization() < 1.0
