"""Unit tests for the microcode ISA, assembler and sequencer (§2.5.1)."""

import pytest

from repro.core.microcode import (
    END,
    MICROSTORE_WORDS,
    Assembler,
    Environment,
    Instr,
    MicrocodeError,
    Op,
    Sequencer,
    StepResult,
    Word,
)
from repro.core.tsrf import TsrfEntry


class TestWordEncoding:
    def test_21_bit_roundtrip(self):
        word = Word(Op.SEND, arg1=5, arg2=9, next_addr=1000)
        encoded = word.encode()
        assert 0 <= encoded < (1 << 21)
        assert Word.decode(encoded) == word

    def test_all_opcodes_roundtrip(self):
        for op in Op:
            word = Word(op, 1, 2, 3)
            assert Word.decode(word.encode()).op == op

    def test_field_overflow_rejected(self):
        with pytest.raises(MicrocodeError):
            Word(Op.SEND, arg1=16, arg2=0, next_addr=0).encode()
        with pytest.raises(MicrocodeError):
            Word(Op.SEND, arg1=0, arg2=0, next_addr=1024).encode()

    def test_decode_rejects_wide_word(self):
        with pytest.raises(MicrocodeError):
            Word.decode(1 << 21)


def assemble_simple():
    asm = Assembler("test")
    program = asm.assemble([
        Instr(Op.SET, "init", label="start"),
        Instr(Op.SEND, "ping"),
        Instr(Op.RECEIVE, targets={3: "got"}),
        Instr(Op.SET, "finish", label="got", next="end"),
    ])
    return program


class TestAssembler:
    def test_entry_points(self):
        program = assemble_simple()
        assert program.entry_points["start"] == 0
        assert program.entry_points["got"] == 3

    def test_fallthrough_chain(self):
        program = assemble_simple()
        assert program.word_at(0).next_addr == 1
        assert program.word_at(1).next_addr == 2

    def test_branch_table_aligned(self):
        program = assemble_simple()
        receive = program.word_at(2)
        assert receive.next_addr % 16 == 0
        # slot 3 is a MOVE trampoline jumping to 'got'
        tramp = program.word_at(receive.next_addr | 3)
        assert tramp.op == Op.MOVE
        assert tramp.next_addr == 3

    def test_unused_branch_slots_unprogrammed(self):
        program = assemble_simple()
        receive = program.word_at(2)
        assert program.store[receive.next_addr | 7] is None

    def test_terminal_goes_to_end(self):
        program = assemble_simple()
        assert program.word_at(3).next_addr == END

    def test_duplicate_label_rejected(self):
        asm = Assembler("dup")
        with pytest.raises(MicrocodeError):
            asm.assemble([
                Instr(Op.SET, "a", label="x", next="end"),
                Instr(Op.SET, "b", label="x", next="end"),
            ])

    def test_undefined_label_rejected(self):
        asm = Assembler("bad")
        with pytest.raises(MicrocodeError):
            asm.assemble([Instr(Op.SET, "a", next="nowhere")])

    def test_fallthrough_off_the_end_rejected(self):
        asm = Assembler("bad")
        with pytest.raises(MicrocodeError):
            asm.assemble([Instr(Op.SET, "a")])

    def test_symbol_table_limited_to_16(self):
        asm = Assembler("wide")
        instrs = [Instr(Op.SET, f"act{i}") for i in range(17)]
        instrs[-1] = Instr(Op.SET, "act16", next="end")
        with pytest.raises(MicrocodeError):
            asm.assemble(instrs)

    def test_branch_without_targets_rejected(self):
        asm = Assembler("bad")
        with pytest.raises(MicrocodeError):
            asm.assemble([Instr(Op.RECEIVE)])

    def test_default_target(self):
        asm = Assembler("default")
        program = asm.assemble([
            Instr(Op.TEST, "c", label="t",
                  targets={0: "zero", None: "other"}),
            Instr(Op.SET, "a", label="zero", next="end"),
            Instr(Op.SET, "b", label="other", next="end"),
        ])
        base = program.word_at(0).next_addr
        assert program.word_at(base | 0).next_addr == 1
        for code in range(1, 16):
            assert program.word_at(base | code).next_addr == 2


def run_program(instrs, handlers=None, entry="start", dispatch=None,
                vars=None):
    asm = Assembler("t")
    program = asm.assemble(instrs)
    handlers = handlers or {}
    env = Environment.bind(
        program,
        senders=handlers.get("send", {}),
        local_senders=handlers.get("lsend", {}),
        conditions=handlers.get("test", {}),
        actions=handlers.get("set", {}),
    )
    seq = Sequencer(program, env)
    entry_obj = TsrfEntry(0)
    entry_obj.valid = True
    entry_obj.pc = program.entry_points[entry]
    entry_obj.vars = vars if vars is not None else {}
    executed, result = seq.run(entry_obj, dispatch)
    return executed, result, entry_obj


class TestSequencer:
    def test_straight_line_counts_instructions(self):
        log = []
        executed, result, _ = run_program(
            [
                Instr(Op.SET, "a", label="start"),
                Instr(Op.SET, "b", next="end"),
            ],
            handlers={"set": {
                "a": lambda e, op: log.append("a"),
                "b": lambda e, op: log.append("b"),
            }},
        )
        assert executed == 2
        assert result is StepResult.DONE
        assert log == ["a", "b"]

    def test_blocks_at_receive(self):
        executed, result, entry = run_program(
            [
                Instr(Op.SEND, "ping", label="start"),
                Instr(Op.RECEIVE, targets={1: "done"}),
                Instr(Op.SET, "x", label="done", next="end"),
            ],
            handlers={"send": {"ping": lambda e: None},
                      "set": {"x": lambda e, op: None}},
        )
        assert result is StepResult.BLOCKED_EXTERNAL
        assert executed == 1
        assert entry.pc == 1  # parked at the RECEIVE

    def test_blocks_at_lreceive(self):
        _, result, _ = run_program(
            [
                Instr(Op.LSEND, "ask", label="start"),
                Instr(Op.LRECEIVE, targets={0: "done"}),
                Instr(Op.SET, "x", label="done", next="end"),
            ],
            handlers={"lsend": {"ask": lambda e: None},
                      "set": {"x": lambda e, op: None}},
        )
        assert result is StepResult.BLOCKED_LOCAL

    def test_multiway_test_dispatch(self):
        taken = []
        instrs = [
            Instr(Op.TEST, "sel", label="start",
                  targets={0: "zero", 1: "one", None: "many"}),
            Instr(Op.SET, "z", label="zero", next="end"),
            Instr(Op.SET, "o", label="one", next="end"),
            Instr(Op.SET, "m", label="many", next="end"),
        ]
        for value, expect in ((0, "z"), (1, "o"), (7, "m")):
            taken.clear()
            run_program(
                instrs,
                handlers={
                    "test": {"sel": lambda e, v=value: v},
                    "set": {k: (lambda tag: lambda e, op: taken.append(tag))(k)
                            for k in ("z", "o", "m")},
                },
            )
            assert taken == [expect]

    def test_resume_with_dispatch_code(self):
        got = []
        instrs = [
            Instr(Op.RECEIVE, label="start", targets={5: "handle"}),
            Instr(Op.SET, "h", label="handle", next="end"),
        ]
        executed, result, _ = run_program(
            instrs,
            handlers={"set": {"h": lambda e, op: got.append(1)}},
            dispatch=5,
        )
        assert result is StepResult.DONE
        assert got == [1]
        # RECEIVE retires (1) + trampoline (1) + SET (1)
        assert executed == 3

    def test_unbound_condition_rejected_at_bind(self):
        asm = Assembler("t")
        program = asm.assemble([
            Instr(Op.TEST, "mystery", label="start", targets={None: "start"}),
        ])
        with pytest.raises(MicrocodeError):
            Environment.bind(program, {}, {}, {}, {})

    def test_jump_into_unprogrammed_address(self):
        _, _, entry = run_program(
            [Instr(Op.RECEIVE, label="start", targets={1: "start"})],
        )
        with pytest.raises(MicrocodeError):
            # dispatch code 2 has no trampoline
            run_program(
                [Instr(Op.RECEIVE, label="start", targets={1: "start"})],
                dispatch=2,
            )


class TestDisassembler:
    def test_remote_program_listing(self):
        from repro.core.microcode import disassemble
        from repro.core.microprograms import build_remote_program

        listing = disassemble(build_remote_program())
        assert "re_read" in listing
        assert "SEND    req_to_home" in listing
        assert "RECEIVE table@" in listing
        assert "JUMP" in listing  # branch-table trampolines

    def test_every_programmed_word_listed(self):
        from repro.core.microcode import disassemble
        from repro.core.microprograms import build_home_program

        program = build_home_program()
        listing = disassemble(program)
        assert len(listing.splitlines()) == program.words_used

    def test_end_marked(self):
        from repro.core.microcode import disassemble
        from repro.core.microprograms import build_remote_program

        assert "-> END" in disassemble(build_remote_program())
