"""ISA kernel suite + cross-model validation tests.

Covers the functional reference (interleaved multi-CPU execution over
``SharedMemory``), the timed-machine workload frontend, the
functional-vs-timed bit-exact memory comparison, the ``repro-xval/1``
report machinery, cache-key folding and the CLI verb.
"""

import dataclasses
import json

import pytest

from repro.__main__ import main
from repro.core.messages import AccessKind
from repro.harness import FACTORIES, UNITS_ATTR
from repro.harness.cache import workload_token
from repro.harness.runner import run_workload
from repro.isa import assemble
from repro.isa.cpu import FunctionalCpu, IsaThread, SharedMemory
from repro.isa.kernels import (
    COUNTER_ADDR,
    KERNEL_NAMES,
    KERNELS,
    LOCK_ADDR,
    RING_SUM,
    IsaKernelFactory,
    IsaKernelParams,
    KernelWorkload,
    expected_membars,
    expected_wh64,
    image_digest,
    kernel_programs,
    run_functional,
    scaled_params,
)
from repro.isa.validate import (
    XVAL_SCHEMA,
    cross_validate,
    fit_params,
    run_suite,
    validate_report,
)

SMALL = {name: IsaKernelParams(kernel=name, iterations=3)
         for name in KERNEL_NAMES}


def small(kernel: str, **kw) -> IsaKernelParams:
    return dataclasses.replace(SMALL[kernel], **kw)


# ---------------------------------------------------------------------------
# IsaThread direct iteration (the formerly-uncovered __next__ path)


class TestIsaThreadIteration:
    def _thread(self):
        words = assemble("""
            lda   r1, 8(r31)
            ldq   r2, 0(r1)
            addq  r2, #1, r2
            stq   r2, 0(r1)
            halt
        """)
        mem = SharedMemory()
        mem.store_q(8, 41)
        cpu = FunctionalCpu(words, mem, agent=0, code_base=0x1000)
        return IsaThread(cpu), cpu, mem

    def test_direct_next_calls(self):
        """Regression: __next__ must work without an explicit iter()."""
        thread, cpu, mem = self._thread()
        first = next(thread)
        assert first == (1, AccessKind.IFETCH, 0x1000, True)
        items = [first] + list(thread)
        assert cpu.state.halted
        assert mem.load_q(8) == 42
        # 5 instructions -> 5 ifetches, plus one item per memory op
        kinds = [item[1] for item in items]
        assert kinds.count(AccessKind.IFETCH) == 5
        assert AccessKind.LOAD in kinds and AccessKind.STORE in kinds

    def test_iter_returns_self(self):
        thread, _cpu, _mem = self._thread()
        assert iter(thread) is thread

    def test_single_stream_across_iter_and_next(self):
        """iter() and bare next() must drain one shared stream."""
        thread, cpu, _mem = self._thread()
        next(thread)                  # consume via __next__ ...
        list(iter(thread))            # ... then drain via __iter__
        assert cpu.state.halted

    def test_exhaustion_raises_stopiteration(self):
        thread, _cpu, _mem = self._thread()
        list(thread)
        with pytest.raises(StopIteration):
            next(thread)

    def test_instruction_cap(self):
        words = assemble("""
        loop:
            br    loop
        """)
        thread = IsaThread(FunctionalCpu(words, SharedMemory()),
                           max_instructions=100)
        with pytest.raises(RuntimeError, match="instruction cap"):
            list(thread)


# ---------------------------------------------------------------------------
# functional reference: postconditions + determinacy


class TestFunctionalKernels:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_postconditions_hold(self, kernel):
        # run_functional asserts KERNELS[kernel].check_final internally
        run = run_functional(kernel, 4, small(kernel))
        assert run.image, "kernel must leave observable state"
        assert all(run.retired), "every CPU must retire instructions"

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_determinate_across_seeds(self, kernel):
        params = small(kernel)
        images = [run_functional(kernel, 4, params, seed=s).image
                  for s in range(5)]
        assert all(img == images[0] for img in images[1:])

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_programs_assemble_per_thread(self, kernel):
        words = kernel_programs(kernel, 4, small(kernel))
        assert len(words) == 4
        assert all(len(w) > 0 for w in words)

    def test_single_cpu_every_kernel(self):
        for kernel in KERNEL_NAMES:
            run_functional(kernel, 1, fit_params(kernel, 1, small(kernel)))

    def test_ring_selfpair_checksum(self):
        """A lone CPU ring-pairs with itself; checksum still lands."""
        m = 3
        run = run_functional("ring", 1,
                             IsaKernelParams(kernel="ring", iterations=m))
        base = 1 << 16                       # pair 0 payload base
        assert run.image[RING_SUM] == m * base + m * (m + 1) // 2

    def test_memcpy_layout_overflow_raises(self):
        with pytest.raises(ValueError):
            run_functional("memcpy", 8,
                           IsaKernelParams(kernel="memcpy", iterations=9))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            run_functional("bogus", 2)
        with pytest.raises(ValueError, match="unknown kernel"):
            KernelWorkload(IsaKernelParams(kernel="bogus"))


class TestContendedLock:
    """N CPUs x iters spinlock increments: exactly N*iters, never less."""

    @pytest.mark.parametrize("nthreads", [2, 4, 8, 16])
    def test_no_lost_updates_functional(self, nthreads):
        iters = 5
        params = IsaKernelParams(kernel="spinlock", iterations=iters)
        for seed in range(4):
            run = run_functional("spinlock", nthreads, params, seed=seed)
            assert run.image[COUNTER_ADDR] == nthreads * iters
            assert LOCK_ADDR not in run.image, "lock must end released"

    def test_contention_actually_happens(self):
        """The schedule must provoke real ldq_l/stq_c interference
        somewhere across seeds, or the test proves nothing."""
        params = IsaKernelParams(kernel="spinlock", iterations=6)
        failures = sum(
            sum(run_functional("spinlock", 8, params, seed=s).stq_c_failures)
            for s in range(4))
        assert failures > 0

    def test_no_lost_updates_timed(self):
        params = IsaKernelParams(kernel="spinlock", iterations=3)
        result = run_workload("P8", IsaKernelFactory(params), num_nodes=1,
                              units_attr="iterations")
        isa = result.extras["isa"]
        assert isa["mem_image"][f"{COUNTER_ADDR:#x}"] == 8 * 3
        assert f"{LOCK_ADDR:#x}" not in isa["mem_image"]
        assert all(c["halted"] for c in isa["cpus"].values())


# ---------------------------------------------------------------------------
# timed machine vs functional reference


class TestTimedVsFunctional:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_final_memory_bit_exact(self, kernel):
        params = fit_params(kernel, 8, small(kernel))
        reference = run_functional(kernel, 8, params)
        result = run_workload("P8", IsaKernelFactory(params), num_nodes=1,
                              units_attr="iterations")
        assert result.extras["isa"]["mem_digest"] == reference.digest

    def test_timed_membar_and_wh64_counters_exact(self):
        for kernel in ("barrier", "memcpy"):
            params = fit_params(kernel, 8, small(kernel))
            result = run_workload("P8", IsaKernelFactory(params),
                                  num_nodes=1, units_attr="iterations")
            isa = result.extras["isa"]
            assert isa["membars"] == expected_membars(kernel, 8, params)
            assert isa["wh64_issued"] == expected_wh64(kernel, 8, params)

    def test_memcpy_is_private_no_forwards(self):
        params = fit_params("memcpy", 8, small("memcpy"))
        result = run_workload("P8", IsaKernelFactory(params), num_nodes=1,
                              units_attr="iterations")
        assert result.extras["isa"]["counters"]["l2_fwds"] == 0

    def test_extras_shape(self):
        result = run_workload("P8", IsaKernelFactory(SMALL["spinlock"]),
                              num_nodes=1, units_attr="iterations")
        isa = result.extras["isa"]
        assert set(isa) >= {"kernel", "nthreads", "mem_digest", "mem_image",
                            "cpus", "counters", "wh64_issued", "membars",
                            "stall_ps"}
        assert isa["kernel"] == "spinlock" and isa["nthreads"] == 8
        assert set(isa["stall_ps"]) >= {"l1_hit", "l2_hit", "l2_fwd",
                                        "local_mem", "remote_mem",
                                        "remote_dirty", "fence"}
        json.dumps(isa)     # must be a pure-JSON document

    def test_multi_node_memory_bit_exact(self):
        params = IsaKernelParams(kernel="spinlock", iterations=2)
        reference = run_functional("spinlock", 4, params)
        result = run_workload("P2", IsaKernelFactory(params), num_nodes=2,
                              units_attr="iterations")
        isa = result.extras["isa"]
        assert isa["nthreads"] == 4
        assert isa["mem_digest"] == reference.digest
        assert isa["counters"]["l2_remote_dirty"] \
            + isa["counters"]["l2_remote_mem"] > 0


# ---------------------------------------------------------------------------
# cross-validation report


class TestCrossValidation:
    def test_cross_validate_passes_small_kernel(self):
        report = cross_validate("memcpy", config="P8", nodes=1,
                                params=small("memcpy"), seeds=(0, 1))
        assert report["memory_match"] and report["ok"]
        names = {c["name"] for c in report["checks"]}
        assert {"membars", "wh64_issued", "l1_miss_rate",
                "mem_stall_frac", "l2_fwds"} <= names

    def test_run_suite_document_valid(self):
        doc = run_suite(("spinlock", "memcpy"), config="P8", nodes=1,
                        scale=0.25, seeds=(0, 1))
        assert doc["schema"] == XVAL_SCHEMA
        assert doc["ok"] and doc["summary"]["kernels"] == 2
        assert validate_report(doc) == []
        json.dumps(doc)

    def test_validate_report_catches_corruption(self):
        doc = run_suite(("memcpy",), config="P8", nodes=1, scale=0.25,
                        seeds=(0,))
        assert validate_report(doc) == []
        bad = json.loads(json.dumps(doc))
        bad["schema"] = "nonsense/9"
        assert any("schema" in p for p in validate_report(bad))
        bad = json.loads(json.dumps(doc))
        bad["kernels"]["memcpy"]["checks"] = []
        assert any("no checks" in p for p in validate_report(bad))
        bad = json.loads(json.dumps(doc))
        bad["kernels"]["memcpy"]["ok"] = False
        assert any("inconsistent" in p for p in validate_report(bad))
        assert validate_report({}) != []
        assert validate_report([1, 2]) != []

    def test_fit_params_clamps_memcpy(self):
        params = fit_params("memcpy", 32,
                            IsaKernelParams(kernel="memcpy", iterations=8))
        assert params.iterations == 2
        untouched = fit_params("spinlock", 32,
                               IsaKernelParams(kernel="spinlock",
                                               iterations=8))
        assert untouched.iterations == 8

    def test_scaled_params_floor(self):
        for kernel in KERNEL_NAMES:
            assert scaled_params(kernel, 0.01).iterations >= 2
            assert scaled_params(kernel, 1.0).kernel == kernel


# ---------------------------------------------------------------------------
# harness integration: registries, cache-key folding, disk round-trip


class TestHarnessIntegration:
    def test_registered_in_factories(self):
        assert FACTORIES["isa"] is IsaKernelFactory
        assert UNITS_ATTR["isa"] == "iterations"

    def test_workload_token_folds_params(self):
        t1 = workload_token(IsaKernelFactory(SMALL["spinlock"]))
        t2 = workload_token(IsaKernelFactory(small("spinlock",
                                                   iterations=4)))
        t3 = workload_token(IsaKernelFactory(SMALL["memcpy"]))
        assert t1 and t2 and t3
        assert len({t1, t2, t3}) == 3

    def test_disk_cache_roundtrip_preserves_extras(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        factory = IsaKernelFactory(SMALL["false_sharing"])
        cold = run_workload("P8", factory, num_nodes=1,
                            units_attr="iterations")
        warm = run_workload("P8", factory, num_nodes=1,
                            units_attr="iterations")
        assert warm.extras["isa"] == cold.extras["isa"]
        assert warm.time_per_unit_ns == cold.time_per_unit_ns

    def test_default_factory_uses_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        from repro.core import preset

        workload = IsaKernelFactory()(preset("P8"), 1)
        assert workload.params == scaled_params("spinlock", 0.25)

    def test_image_digest_is_stable_and_sensitive(self):
        image = {COUNTER_ADDR: 24, LOCK_ADDR + 8: 1}
        assert image_digest(image) == image_digest(dict(image))
        assert image_digest(image) != image_digest({COUNTER_ADDR: 25})


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_xval_verb_exit_zero(self, tmp_path, capsys):
        out = tmp_path / "xval.json"
        rc = main(["xval", "--kernel", "memcpy", "--scale", "0.25",
                   "--seeds", "2", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == XVAL_SCHEMA and doc["ok"]
        assert "PASS" in capsys.readouterr().out

    def test_xval_check_report(self, tmp_path, capsys):
        out = tmp_path / "xval.json"
        assert main(["xval", "--kernel", "false_sharing",
                     "--scale", "0.25", "--seeds", "1",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["xval", "--check-report", str(out)]) == 0
        assert "valid repro-xval/1" in capsys.readouterr().out
        broken = json.loads(out.read_text())
        broken["kernels"]["false_sharing"]["ok"] = False
        out.write_text(json.dumps(broken))
        assert main(["xval", "--check-report", str(out)]) == 1

    def test_run_verb_isa_workload(self, capsys):
        rc = main(["run", "--workload", "isa", "--scale", "0.25"])
        assert rc == 0
        assert "simulating isa" in capsys.readouterr().out

    def test_kernels_exposed_in_expected_mnemonics(self):
        """Every kernel really goes through the two-pass assembler and
        uses the coherence hooks ISSUE 9 names."""
        sources = {
            name: "\n".join(
                KERNELS[name].program(tid, 4, small(name))
                for tid in range(4))
            for name in KERNEL_NAMES
        }
        assert "ldq_l" in sources["spinlock"]
        assert "stq_c" in sources["spinlock"]
        assert "mb" in sources["barrier"]
        assert "mb" in sources["ring"]
        assert "wh64" in sources["memcpy"]
