"""Unit tests for the floor-plan area model (Figure 9, §5)."""

import pytest

from repro.area import ModuleArea, estimate_modules, floorplan_summary
from repro.core import OOO, PIRANHA_P1, PIRANHA_P8


class TestFigure9Budget:
    def test_cores_and_caches_dominate(self):
        """Figure 9: roughly 75% of the processing node is CPUs + L1/L2."""
        summary = floorplan_summary(PIRANHA_P8)
        assert 0.70 <= summary["cores_and_caches_fraction"] <= 0.85

    def test_remaining_groups_present(self):
        groups = floorplan_summary(PIRANHA_P8)["by_group_mm2"]
        for group in ("memory", "interconnect", "engine", "misc"):
            assert groups.get(group, 0) > 0


class TestModuleInventory:
    def test_eight_of_each_replicated_module(self):
        modules = {m.name: m for m in estimate_modules(PIRANHA_P8)}
        assert modules["CPU core"].count == 8
        assert modules["iL1"].count == 8
        assert modules["dL1"].count == 8
        assert modules["L2 bank"].count == 8
        assert modules["Memory controller"].count == 8

    def test_two_protocol_engines(self):
        modules = [m for m in estimate_modules(PIRANHA_P8)
                   if m.group == "engine"]
        assert len(modules) == 2

    def test_p1_smaller_than_p8(self):
        assert (floorplan_summary(PIRANHA_P1)["total_mm2"]
                < floorplan_summary(PIRANHA_P8)["total_mm2"])

    def test_ooo_core_larger_than_piranha_core(self):
        """A 4-issue out-of-order core dwarfs the simple in-order core."""
        piranha_core = next(m for m in estimate_modules(PIRANHA_P8)
                            if m.name == "CPU core")
        ooo_core = next(m for m in estimate_modules(OOO)
                        if m.name == "CPU core")
        assert ooo_core.area_mm2 > 3 * piranha_core.area_mm2

    def test_total_is_sum(self):
        modules = estimate_modules(PIRANHA_P8)
        summary = floorplan_summary(PIRANHA_P8)
        assert summary["total_mm2"] == pytest.approx(
            sum(m.total_mm2 for m in modules))
