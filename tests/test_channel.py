"""Unit tests for the bit-level channel (framing, CRC, retransmission)."""

import pytest

from repro.interconnect import BitSerialChannel, ChannelError, Packet, PacketType
from repro.interconnect.channel import packet_to_words, words_to_packet


class TestFraming:
    def test_short_packet_is_8_words(self):
        pkt = Packet(PacketType.READ, src=1, dst=2, addr=0x1000)
        assert len(packet_to_words(pkt)) == 8

    def test_long_packet_is_40_words(self):
        pkt = Packet(PacketType.DATA_REPLY, src=1, dst=2, addr=0x1000)
        pkt.info["data_image"] = bytes(64)
        assert len(packet_to_words(pkt)) == 40

    def test_frame_roundtrip_with_data(self):
        pkt = Packet(PacketType.DATA_REPLY, src=9, dst=4, addr=0x2040,
                     txn_id=99)
        pkt.info["data_image"] = bytes(range(64))
        out = words_to_packet(packet_to_words(pkt))
        assert out.info["data_image"] == bytes(range(64))
        assert out.src == 9 and out.dst == 4 and out.txn_id == 99

    def test_bad_frame_length(self):
        with pytest.raises(ValueError):
            words_to_packet([0] * 9)

    def test_wrong_data_length_rejected(self):
        pkt = Packet(PacketType.DATA_REPLY, src=0, dst=1)
        pkt.info["data_image"] = b"short"
        with pytest.raises(ValueError):
            packet_to_words(pkt)


class TestCleanChannel:
    def test_transfer_no_errors(self):
        ch = BitSerialChannel(error_rate=0.0, seed=1)
        pkt = Packet(PacketType.READ, src=0, dst=1, addr=0x40, txn_id=5)
        out = ch.transfer(pkt)
        assert out.addr == 0x40 and out.txn_id == 5
        assert ch.log.retries == 0
        assert ch.log.attempts == 1


class TestErrorRecovery:
    def test_errors_detected_and_retransmitted(self):
        ch = BitSerialChannel(error_rate=0.01, seed=7, max_retries=50)
        pkt = Packet(PacketType.DATA_REPLY, src=2, dst=3, addr=0x1000)
        pkt.info["data_image"] = bytes(range(64))
        successes = 0
        for _ in range(20):
            out = ch.transfer(pkt)
            assert out.info["data_image"] == bytes(range(64))
            successes += 1
        assert successes == 20
        assert ch.log.errors_injected > 0
        assert ch.log.retries > 0

    def test_gives_up_after_max_retries(self):
        ch = BitSerialChannel(error_rate=0.9, seed=3, max_retries=2)
        pkt = Packet(PacketType.READ, src=0, dst=1)
        with pytest.raises(ChannelError):
            for _ in range(50):
                ch.transfer(pkt)

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            BitSerialChannel(error_rate=1.5)

    def test_wire_words_are_balanced(self):
        from repro.interconnect import is_balanced

        ch = BitSerialChannel(error_rate=0.0, seed=1)
        ch.transfer(Packet(PacketType.READ, src=0, dst=1))
        assert all(is_balanced(w) for w in ch.log.wire_words)
