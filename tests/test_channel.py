"""Unit tests for the bit-level channel (framing, CRC, retransmission)."""

import pytest

from repro.interconnect import BitSerialChannel, ChannelError, Packet, PacketType
from repro.interconnect.channel import packet_to_words, words_to_packet


class TestFraming:
    def test_short_packet_is_8_words(self):
        pkt = Packet(PacketType.READ, src=1, dst=2, addr=0x1000)
        assert len(packet_to_words(pkt)) == 8

    def test_long_packet_is_40_words(self):
        pkt = Packet(PacketType.DATA_REPLY, src=1, dst=2, addr=0x1000)
        pkt.info["data_image"] = bytes(64)
        assert len(packet_to_words(pkt)) == 40

    def test_frame_roundtrip_with_data(self):
        pkt = Packet(PacketType.DATA_REPLY, src=9, dst=4, addr=0x2040,
                     txn_id=99)
        pkt.info["data_image"] = bytes(range(64))
        out = words_to_packet(packet_to_words(pkt))
        assert out.info["data_image"] == bytes(range(64))
        assert out.src == 9 and out.dst == 4 and out.txn_id == 99

    def test_bad_frame_length(self):
        with pytest.raises(ValueError):
            words_to_packet([0] * 9)

    def test_wrong_data_length_rejected(self):
        pkt = Packet(PacketType.DATA_REPLY, src=0, dst=1)
        pkt.info["data_image"] = b"short"
        with pytest.raises(ValueError):
            packet_to_words(pkt)


class TestCleanChannel:
    def test_transfer_no_errors(self):
        ch = BitSerialChannel(error_rate=0.0, seed=1)
        pkt = Packet(PacketType.READ, src=0, dst=1, addr=0x40, txn_id=5)
        out = ch.transfer(pkt)
        assert out.addr == 0x40 and out.txn_id == 5
        assert ch.log.retries == 0
        assert ch.log.attempts == 1


class TestErrorRecovery:
    def test_errors_detected_and_retransmitted(self):
        ch = BitSerialChannel(error_rate=0.01, seed=7, max_retries=50)
        pkt = Packet(PacketType.DATA_REPLY, src=2, dst=3, addr=0x1000)
        pkt.info["data_image"] = bytes(range(64))
        successes = 0
        for _ in range(20):
            out = ch.transfer(pkt)
            assert out.info["data_image"] == bytes(range(64))
            successes += 1
        assert successes == 20
        assert ch.log.errors_injected > 0
        assert ch.log.retries > 0

    def test_gives_up_after_max_retries(self):
        ch = BitSerialChannel(error_rate=0.9, seed=3, max_retries=2)
        pkt = Packet(PacketType.READ, src=0, dst=1)
        with pytest.raises(ChannelError):
            for _ in range(50):
                ch.transfer(pkt)

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            BitSerialChannel(error_rate=1.5)

    def test_wire_words_are_balanced(self):
        from repro.interconnect import is_balanced

        ch = BitSerialChannel(error_rate=0.0, seed=1)
        ch.transfer(Packet(PacketType.READ, src=0, dst=1))
        assert all(is_balanced(w) for w in ch.log.wire_words)

    def test_final_failed_attempt_is_not_a_retry(self):
        """retries counts retransmissions actually performed: a frame
        lost with max_retries=0 was never retransmitted (retries must
        stay 0), and giving up after k retries reports exactly k."""
        def corrupt_all(attempt, wire):
            return _reencode(1, wire, xor_data=0x1)

        ch = _InjectingChannel(corrupt_all, error_rate=0.0, max_retries=0)
        with pytest.raises(ChannelError):
            ch.transfer(Packet(PacketType.READ, src=0, dst=1))
        assert ch.log.attempts == 1
        assert ch.log.retries == 0

        ch2 = _InjectingChannel(corrupt_all, error_rate=0.0, max_retries=2)
        with pytest.raises(ChannelError):
            ch2.transfer(Packet(PacketType.READ, src=0, dst=1))
        assert ch2.log.attempts == 3
        assert ch2.log.retries == 2


class _InjectingChannel(BitSerialChannel):
    """Channel that corrupts chosen wire words with *valid* codewords.

    The built-in ``error_rate`` injection flips a single wire, which
    always breaks DC balance and is caught by the decoder — it never
    reaches the CRC check.  This subclass substitutes a legally encoded
    word (balanced, decodable) carrying wrong bits, which is what a
    multi-bit burst that lands back on a codeword looks like: the only
    line of defence left is the CRC (for data bits) or the flow-field
    validation (for flow bits).
    """

    def __init__(self, corrupt, **kw):
        super().__init__(**kw)
        self._corrupt = corrupt   # callable(attempt_no, wire) -> wire
        self._attempt_no = 0

    def _transmit_words(self, words, flow):
        wire = super()._transmit_words(words, flow)
        wire = self._corrupt(self._attempt_no, list(wire))
        self._attempt_no += 1
        return wire


def _reencode(word_idx, wire, flow2=None, xor_data=0):
    """Replace wire[word_idx] with a valid codeword, optionally changing
    its flow field and/or XOR-corrupting its data bits (XOR guarantees
    the word actually changes)."""
    from repro.interconnect.encoding import decode, encode

    data18, rnd = decode(wire[word_idx])
    old_flow, old_data = data18 >> 16, data18 & 0xFFFF
    new_flow = old_flow if flow2 is None else flow2
    new_data = old_data ^ xor_data
    wire[word_idx] = encode((new_flow << 16) | new_data, rnd)
    return wire


class TestCorruptionInjection:
    def _payload_pkt(self):
        pkt = Packet(PacketType.DATA_REPLY, src=2, dst=3, addr=0x1000,
                     txn_id=42)
        pkt.info["data_image"] = bytes(range(64))
        return pkt

    def test_valid_codeword_data_corruption_caught_by_crc(self):
        """A balanced, decodable wire word with flipped *data* bits gets
        past the decoder; the CRC must catch it and trigger a
        retransmission that delivers the frame intact."""
        def corrupt(attempt, wire):
            if attempt == 0:
                _reencode(3, wire, xor_data=0xBEEF)
            return wire

        ch = _InjectingChannel(corrupt, error_rate=0.0, seed=1)
        out = ch.transfer(self._payload_pkt())
        assert out.info["data_image"] == bytes(range(64))
        assert out.txn_id == 42
        assert ch.log.attempts == 2
        assert ch.log.retries == 1

    def test_corrupted_crc_word_rejected(self):
        """Corrupting the CRC word itself (keeping FLOW_CRC) must also
        force a retransmission, not deliver a frame with a dangling
        checksum."""
        def corrupt(attempt, wire):
            if attempt == 0:
                _reencode(len(wire) - 1, wire, xor_data=0x5A5A)
            return wire

        ch = _InjectingChannel(corrupt, error_rate=0.0, seed=1)
        out = ch.transfer(self._payload_pkt())
        assert out.info["data_image"] == bytes(range(64))
        assert ch.log.retries == 1

    def test_flow_field_corruption_rejected(self):
        """The CRC covers only data bits, so a valid codeword whose
        *flow* field was corrupted (e.g. FLOW_DATA -> FLOW_RETRY) passes
        the checksum; the receiver must reject it on flow validation
        instead of accepting a frame with broken flow control."""
        from repro.interconnect.channel import FLOW_RETRY

        def corrupt(attempt, wire):
            if attempt == 0:
                _reencode(5, wire, flow2=FLOW_RETRY)
            return wire

        ch = _InjectingChannel(corrupt, error_rate=0.0, seed=1)
        out = ch.transfer(self._payload_pkt())
        assert out.info["data_image"] == bytes(range(64))
        assert ch.log.attempts == 2
        assert ch.log.retries == 1

    def test_flow_idle_corruption_rejected(self):
        from repro.interconnect.channel import FLOW_IDLE

        def corrupt(attempt, wire):
            if attempt == 0:
                _reencode(0, wire, flow2=FLOW_IDLE)
            return wire

        ch = _InjectingChannel(corrupt, error_rate=0.0, seed=1)
        out = ch.transfer(self._payload_pkt())
        assert ch.log.retries == 1
        assert out.pack_header() == self._payload_pkt().pack_header()

    def test_delivery_bit_identical_to_clean_run(self):
        """A lossy channel (random injected errors plus one deliberate
        valid-codeword corruption) must deliver every packet with the
        exact bits a clean channel delivers: retransmission is allowed
        to cost attempts, never correctness."""
        def corrupt(attempt, wire):
            if attempt % 3 == 0:
                _reencode(2, wire, xor_data=0xDEAD)
            return wire

        lossy = _InjectingChannel(corrupt, error_rate=0.02, seed=11,
                                  max_retries=50)
        clean = BitSerialChannel(error_rate=0.0, seed=11)
        for i in range(12):
            pkt = Packet(PacketType.DATA_REPLY, src=i % 4, dst=(i + 1) % 4,
                         addr=0x40 * i, txn_id=i)
            pkt.info["data_image"] = bytes((i + j) & 0xFF
                                           for j in range(64))
            got = lossy.transfer(pkt)
            want = clean.transfer(pkt)
            assert got.pack_header() == want.pack_header()
            assert got.info["data_image"] == want.info["data_image"]
        assert lossy.log.retries > 0
        # attempts/retries accounting stays exact under mixed corruption
        assert lossy.log.attempts == 12 + lossy.log.retries
