"""Unit tests for the hot-potato router (§2.6.1)."""

import pytest

from repro.interconnect import (
    Packet,
    PacketType,
    RouterParams,
    build_routers,
    fully_connected,
    line,
    mesh2d,
    ring,
)
from repro.sim import Simulator


def catcher(routers, node):
    got = []
    routers[node].iq.set_default_disposition(lambda p: got.append(p) or True)
    return got


class TestDelivery:
    def test_single_hop(self):
        sim = Simulator()
        routers = build_routers(sim, line(2))
        got = catcher(routers, 1)
        routers[0].inject(Packet(PacketType.READ, src=0, dst=1))
        sim.run()
        assert len(got) == 1

    def test_multi_hop_chain(self):
        sim = Simulator()
        routers = build_routers(sim, line(5))
        got = catcher(routers, 4)
        routers[0].inject(Packet(PacketType.READ, src=0, dst=4))
        sim.run()
        assert len(got) == 1
        assert routers[2].c_transit.value == 1  # passed through the middle

    def test_local_delivery_without_network(self):
        sim = Simulator()
        routers = build_routers(sim, line(2))
        got = catcher(routers, 0)
        routers[0].inject(Packet(PacketType.READ, src=0, dst=0))
        sim.run()
        assert len(got) == 1

    def test_all_pairs_mesh(self):
        sim = Simulator()
        topo = mesh2d(3, 3)
        routers = build_routers(sim, topo)
        catchers = {n: catcher(routers, n) for n in topo.nodes}
        for src in topo.nodes:
            for dst in topo.nodes:
                if src != dst:
                    routers[src].inject(
                        Packet(PacketType.READ, src=src, dst=dst))
        sim.run()
        for dst, got in catchers.items():
            assert len(got) == 8, f"node {dst} got {len(got)}"


class TestTiming:
    def test_short_packet_single_hop_latency(self):
        """fall-through (2ns) + 2-cycle serialisation (4ns) + wire (2ns)."""
        sim = Simulator()
        routers = build_routers(sim, line(2))
        got = []
        routers[1].iq.set_default_disposition(
            lambda p: got.append(sim.now) or True)
        routers[0].inject(Packet(PacketType.READ, src=0, dst=1))
        sim.run()
        assert got[0] == 8000  # 8 ns

    def test_long_packet_slower(self):
        sim = Simulator()
        routers = build_routers(sim, line(2))
        times = []
        routers[1].iq.set_default_disposition(
            lambda p: times.append((p.ptype, sim.now)) or True)
        routers[0].inject(Packet(PacketType.DATA_REPLY, src=0, dst=1))
        sim.run()
        # 10-cycle serialisation: 2 + 20 + 2 = 24 ns
        assert times[0][1] == 24000

    def test_serialisation_contention(self):
        """Two packets down one link: second waits for the wire."""
        sim = Simulator()
        routers = build_routers(sim, line(2))
        times = []
        routers[1].iq.set_default_disposition(
            lambda p: times.append(sim.now) or True)
        routers[0].inject(Packet(PacketType.READ, src=0, dst=1))
        routers[0].inject(Packet(PacketType.READ, src=0, dst=1))
        sim.run()
        assert len(times) == 2
        assert times[1] - times[0] == 4000  # one short serialisation apart


class TestAdaptivity:
    def test_adaptive_paths_spread_over_minimal_routes(self):
        """In a ring, traffic to the antipode can take either direction."""
        sim = Simulator()
        topo = ring(4)
        routers = build_routers(sim, topo)
        got = catcher(routers, 2)
        for _ in range(8):
            routers[0].inject(Packet(PacketType.READ, src=0, dst=2))
        sim.run()
        assert len(got) == 8
        # both neighbours carried transit traffic
        assert routers[1].c_transit.value > 0
        assert routers[3].c_transit.value > 0

    def test_age_escalates_priority(self):
        params = RouterParams(age_per_priority=1)
        pkt = Packet(PacketType.READ, src=0, dst=1, priority=0)
        pkt.age = 3
        # escalation formula applied on misroute; assert the invariant
        assert min(3, pkt.priority + pkt.age // params.age_per_priority) == 3


class TestStatistics:
    def test_latency_recorded(self):
        sim = Simulator()
        routers = build_routers(sim, line(3))
        catcher(routers, 2)
        routers[0].inject(Packet(PacketType.READ, src=0, dst=2))
        sim.run()
        assert routers[2].a_latency.count == 1
        assert routers[2].a_latency.mean == 16000.0
