"""Golden-digest regression tests for canonical simulation results.

Four canonical points — P1 and P8, each under quarter-scale OLTP and
DSS with *explicit* workload parameters (so ``REPRO_SCALE`` cannot
perturb them) — are pinned as SHA-256 digests of the deterministic
measurement payload in ``tests/golden/digests.json``.

The digest covers :meth:`RunResult.payload_tuple` exactly — every field
the harness documents as deterministic — so any unintentional behaviour
change in the core model shows up as a digest mismatch here, with the
full payload printed for diffing.  The same digest must come out of the
serial path, the ``run_jobs`` ProcessPool path, and a warm-cache
replay; that pins the determinism contract, not just the numbers.

When a *deliberate* model change shifts the numbers, regenerate with::

    PYTHONPATH=src python tests/test_golden_digests.py --regen
"""

import hashlib
import json
import os

import pytest

from repro.harness import Job, run_jobs
from repro.harness.experiments import DssFactory, OltpFactory
from repro.harness.runner import run_workload
from repro.isa.kernels import IsaKernelFactory, IsaKernelParams
from repro.workloads import DssParams, OltpParams

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "digests.json")

#: quarter-scale parameters, spelled out so environment scaling and
#: default-parameter drift cannot reach them
OLTP_Q = OltpParams(transactions=20, warmup_transactions=38)
DSS_Q = DssParams(rows=65, warmup_rows=10)
ISA_MEMCPY = IsaKernelParams(kernel="memcpy", iterations=8)
ISA_SPINLOCK = IsaKernelParams(kernel="spinlock", iterations=4)

#: name -> (config, factory, units_attr, num_nodes)
CANONICAL = {
    "P1-oltp": ("P1", OltpFactory(OLTP_Q), "transactions", 1),
    "P8-oltp": ("P8", OltpFactory(OLTP_Q), "transactions", 1),
    "P1-dss": ("P1", DssFactory(DSS_Q), "rows", 1),
    "P8-dss": ("P8", DssFactory(DSS_Q), "rows", 1),
    # real code through the machine: single-CPU private kernel and a
    # 32-CPU cross-node lock — the ISA path is bit-stability-gated too
    "P1-isa-memcpy": ("P1", IsaKernelFactory(ISA_MEMCPY),
                      "iterations", 1),
    "P8x4-isa-spinlock": ("P8", IsaKernelFactory(ISA_SPINLOCK),
                          "iterations", 4),
}


def payload_digest(result) -> str:
    """SHA-256 over the canonical JSON of the deterministic payload.
    Floats go through ``repr`` (shortest round-trip form), so two
    payloads digest equally iff they are bit-for-bit equal."""
    payload = [repr(v) if isinstance(v, float) else v
               for v in result.payload_tuple()]
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(blob.encode()).hexdigest()


def run_point(name: str):
    config, factory, units, nodes = CANONICAL[name]
    return run_workload(config, factory, num_nodes=nodes, units_attr=units)


def load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(CANONICAL))
def test_golden_digest_serial(name):
    golden = load_golden()
    result = run_point(name)
    digest = payload_digest(result)
    assert digest == golden[name]["digest"], (
        f"{name}: payload drifted from golden.\n"
        f"  golden payload: {golden[name]['payload']}\n"
        f"  current payload: {list(result.payload_tuple())}\n"
        f"If this change is intentional, regenerate with "
        f"`python tests/test_golden_digests.py --regen`.")


def test_golden_digest_warm_cache():
    """A warm-cache (memo) replay returns the identical payload."""
    first = run_point("P1-oltp")
    second = run_point("P1-oltp")
    assert payload_digest(first) == payload_digest(second)
    assert first.payload_tuple() == second.payload_tuple()


def test_golden_digest_parallel_jobs(monkeypatch):
    """The ProcessPool path computes the same digests as the pinned
    goldens (cache disabled so workers actually simulate)."""
    from repro.core.config import preset

    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    golden = load_golden()
    names = ["P1-oltp", "P1-isa-memcpy"]  # cheap points: workers re-simulate
    jobs = [Job(config=preset(CANONICAL[n][0]), factory=CANONICAL[n][1],
                num_nodes=CANONICAL[n][3], units_attr=CANONICAL[n][2])
            for n in names]
    results = run_jobs(jobs, jobs=2)
    for name, result in zip(names, results):
        assert payload_digest(result) == golden[name]["digest"], name


def regen() -> None:
    doc = {}
    for name in sorted(CANONICAL):
        result = run_point(name)
        doc[name] = {
            "digest": payload_digest(result),
            "payload": [repr(v) if isinstance(v, float) else v
                        for v in result.payload_tuple()],
        }
        print(f"{name}: {doc[name]['digest']}")
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
