"""Scenario tests for the inter-node protocol through the microcoded
engines (§2.5), on a two-node system with requests driven directly."""

import pytest

from repro.core import (
    MESI,
    AccessKind,
    CoherenceChecker,
    PiranhaSystem,
    ReplySource,
    preset,
)
from repro.core.directory import DirState
from repro.core.messages import MemRequest, request_for


@pytest.fixture
def system():
    return PiranhaSystem(preset("P2"), num_nodes=2,
                         checker=CoherenceChecker())


def issue(system, node, cpu, kind, addr):
    out = {}

    def done(latency_ps, source):
        out["latency_ns"] = latency_ps / 1000.0
        out["source"] = source

    req = MemRequest(cpu_id=cpu, kind=kind, addr=addr, is_instr=False,
                     done=done, node=node)
    req.issue_time = system.sim.now
    system.nodes[node].issue_miss(req, request_for(kind, MESI.INVALID))
    system.sim.run()
    return out["latency_ns"], out["source"]


HOME0 = 0x0000   # homed at node 0
HOME1 = 0x2000   # homed at node 1


class TestRemoteRead:
    def test_two_hop_read_from_home_memory(self, system):
        latency, source = issue(system, 1, 0, AccessKind.LOAD, HOME0)
        assert source == ReplySource.REMOTE_MEM
        # Table 1 target is 120 ns for adjacent nodes
        assert latency == pytest.approx(120.0, rel=0.25)

    def test_clean_exclusive_grant(self, system):
        issue(system, 1, 0, AccessKind.LOAD, HOME0)
        assert system.nodes[1].l1d[0].peek(HOME0).state == MESI.EXCLUSIVE
        direntry = system.dirstores[0].read(HOME0)
        assert direntry.state == DirState.EXCLUSIVE
        assert direntry.owner == 1

    def test_shared_grant_when_another_node_shares(self, system):
        """A second reader gets S, and the directory lists both."""
        # make node1 a *shared* holder: read from node1, then downgrade via
        # a read at the home node (3-hop local fetch)
        issue(system, 1, 0, AccessKind.LOAD, HOME0)
        issue(system, 0, 0, AccessKind.LOAD, HOME0)
        direntry = system.dirstores[0].read(HOME0)
        assert direntry.state in (DirState.SHARED, DirState.UNCACHED)

    def test_local_read_stays_off_the_engines(self, system):
        """Partial directory interpretation: a purely local miss never
        touches the protocol engines."""
        he = system.nodes[0].home_engine
        re = system.nodes[0].remote_engine
        before = he.c_threads.value + re.c_threads.value
        latency, source = issue(system, 0, 0, AccessKind.LOAD, HOME0)
        assert source == ReplySource.LOCAL_MEM
        assert he.c_threads.value + re.c_threads.value == before


class TestThreeHopDirty:
    def test_remote_dirty_read_forwards_from_owner(self, system):
        issue(system, 1, 0, AccessKind.STORE, HOME0)  # node1 owns dirty
        latency, source = issue(system, 0, 0, AccessKind.LOAD, HOME0)
        assert source == ReplySource.REMOTE_DIRTY
        assert latency == pytest.approx(180.0, rel=0.30)

    def test_reply_forwarding_updates_directory_immediately(self, system):
        issue(system, 1, 0, AccessKind.STORE, HOME0)
        issue(system, 0, 0, AccessKind.LOAD, HOME0)
        # after the 3-hop read the old owner remains a sharer
        direntry = system.dirstores[0].read(HOME0)
        assert direntry.state in (DirState.SHARED, DirState.UNCACHED)
        # ... and the dirty data reached home memory (sharing write-back)
        assert system.mem_versions.get(HOME0, 0) >= 1

    def test_dirty_data_version_travels(self, system):
        issue(system, 1, 0, AccessKind.STORE, HOME0)
        issue(system, 0, 0, AccessKind.LOAD, HOME0)
        reader_line = system.nodes[0].l1d[0].peek(HOME0)
        assert reader_line.version == 1

    def test_three_hop_write(self, system):
        issue(system, 1, 0, AccessKind.STORE, HOME0)
        latency, source = issue(system, 0, 0, AccessKind.STORE, HOME0)
        assert source == ReplySource.REMOTE_DIRTY
        assert system.nodes[1].l1d[0].peek(HOME0) is None  # invalidated
        assert system.nodes[0].l1d[0].peek(HOME0).state == MESI.MODIFIED


class TestInvalidation:
    def test_write_invalidates_remote_sharers(self, system):
        issue(system, 1, 0, AccessKind.LOAD, HOME0)   # node1 E
        issue(system, 0, 0, AccessKind.LOAD, HOME0)   # both S
        issue(system, 0, 0, AccessKind.STORE, HOME0)  # home writes
        system.sim.run()
        assert system.nodes[1].l1d[0].peek(HOME0) is None
        direntry = system.dirstores[0].read(HOME0)
        assert direntry.state == DirState.UNCACHED  # home owner untracked

    def test_inval_acks_complete(self, system):
        issue(system, 1, 0, AccessKind.LOAD, HOME0)
        issue(system, 0, 0, AccessKind.LOAD, HOME0)
        issue(system, 0, 0, AccessKind.STORE, HOME0)
        system.sim.run()
        assert system.nodes[0].c_acks_completed.value >= 1


class TestWriteback:
    def test_dirty_l2_victim_writes_back_to_remote_home(self, system):
        issue(system, 1, 0, AccessKind.STORE, HOME0)
        node1 = system.nodes[1]
        bank = node1.bank_for(HOME0)
        # evict from L1 (owner -> L2 victim fill)
        l1 = node1.l1d[0]
        stride = l1.num_sets * 64
        issue(system, 1, 0, AccessKind.LOAD, HOME0 + stride)
        issue(system, 1, 0, AccessKind.LOAD, HOME0 + 2 * stride)
        assert bank._l2_line(HOME0) is not None
        # force the L2 set full so HOME0's line is displaced
        l2_stride = bank.num_sets * 8 * 64  # bank-set stride
        for i in range(1, 9):
            addr = HOME0 + i * l2_stride
            issue(system, 1, 0, AccessKind.STORE, addr)
            issue(system, 1, 0, AccessKind.LOAD, addr + stride)
            issue(system, 1, 0, AccessKind.LOAD, addr + 2 * stride)
        system.sim.run()
        # the line left node 1 and its data reached home
        assert system.mem_versions.get(HOME0, 0) >= 1
        assert system.dirstores[0].read(HOME0).state == DirState.UNCACHED
        assert not bank.wb_buffer  # ack released the buffer

    def test_checker_clean(self, system):
        issue(system, 0, 0, AccessKind.STORE, HOME1)
        issue(system, 1, 0, AccessKind.STORE, HOME0)
        issue(system, 0, 0, AccessKind.LOAD, HOME0)
        issue(system, 1, 0, AccessKind.LOAD, HOME1)
        system.sim.run()
        system.checker.verify_quiesced()


class TestEngineAccounting:
    def test_remote_read_engine_instruction_counts(self, system):
        issue(system, 1, 0, AccessKind.LOAD, HOME0)
        re = system.nodes[1].remote_engine
        he = system.nodes[0].home_engine
        # the paper's 4-instruction remote-read path (+ branch trampolines)
        assert 4 <= re.c_instructions.value <= 8
        assert he.c_threads.value == 1
        assert he.c_instructions.value >= 4

    def test_tsrf_freed_after_transaction(self, system):
        issue(system, 1, 0, AccessKind.LOAD, HOME0)
        assert system.nodes[1].remote_engine.tsrf.occupancy() == 0
        assert system.nodes[0].home_engine.tsrf.occupancy() == 0

    def test_wh64_remote(self, system):
        latency, source = issue(system, 1, 0, AccessKind.WH64, HOME0)
        assert source == ReplySource.REMOTE_MEM
        assert system.nodes[1].l1d[0].peek(HOME0).state == MESI.MODIFIED
