"""Unit tests for the coherence invariant checker."""

import pytest

from repro.core import MESI
from repro.core.checker import CoherenceChecker, CoherenceViolation


class TestSingleWriterPerNode:
    def test_same_node_exclusive_over_shared_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        with pytest.raises(CoherenceViolation):
            ck.on_fill(0, 2, 0x40, MESI.MODIFIED, 1)

    def test_exclusive_after_invalidate_ok(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_invalidate(0, 0, 0x40)
        ck.on_fill(0, 2, 0x40, MESI.MODIFIED, 1)
        ck.verify_quiesced()

    def test_multiple_shared_ok(self):
        ck = CoherenceChecker()
        for cache in range(4):
            ck.on_fill(0, cache, 0x40, MESI.SHARED, 0)
        ck.verify_quiesced()


class TestEagerReplies:
    def test_cross_node_survivors_marked_stale(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 1)  # eager grant elsewhere
        # unresolved staleness fails at quiesce
        with pytest.raises(CoherenceViolation):
            ck.verify_quiesced()

    def test_late_invalidation_resolves_staleness(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 1)
        ck.on_invalidate(0, 0, 0x40)
        ck.verify_quiesced()

    def test_refill_with_new_epoch_clears_staleness(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 5)
        # the stale holder refilled with the fresh epoch (racing refill)
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 5)
        ck.on_invalidate(1, 0, 0x40)
        ck.verify_quiesced()

    def test_refill_with_old_version_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 5)
        with pytest.raises(CoherenceViolation):
            ck.on_fill(0, 0, 0x40, MESI.SHARED, 2)


class TestVersionMonotonicity:
    def test_regressed_exclusive_version_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 10)
        ck.on_invalidate(0, 0, 0x40)
        with pytest.raises(CoherenceViolation):
            ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 3)


class TestDowngrade:
    def test_downgrade_allows_new_sharers(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 1)
        ck.on_downgrade(0, 0, 0x40)
        ck.on_fill(1, 0, 0x40, MESI.SHARED, 1)
        ck.verify_quiesced()

    def test_two_exclusives_at_quiesce_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 1)
        # bypass on_fill's own sweep by writing state directly (simulating
        # a buggy protocol that left two exclusive holders)
        audit = ck.lines[0x40]
        audit.holders[(1, 0)] = MESI.MODIFIED
        with pytest.raises(CoherenceViolation):
            ck.verify_quiesced()


class TestUnknownHolder:
    """Downgrades/invalidations can legitimately target copies the checker
    never saw filled (silent clean evictions raced ahead); they must be
    counted but never corrupt the audit state."""

    def test_downgrade_unknown_line_is_noop(self):
        ck = CoherenceChecker()
        ck.on_downgrade(0, 0, 0x9999)
        assert ck.downgrades == 1
        ck.verify_quiesced()

    def test_downgrade_unknown_holder_on_known_line(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 1)
        ck.on_downgrade(0, 3, 0x40)  # cache 3 never filled the line
        # the real holder's state is untouched
        assert ck.lines[0x40].holders[(0, 0)] == MESI.MODIFIED
        ck.verify_quiesced()

    def test_invalidate_unknown_holder_on_known_line(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_invalidate(1, 2, 0x40)  # (node1, cache2) holds nothing
        assert ck.lines[0x40].holders == {(0, 0): MESI.SHARED}
        ck.verify_quiesced()


class TestMultiNodeQuiesce:
    def test_stale_survivors_on_two_nodes_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(2, 0, 0x40, MESI.MODIFIED, 1)  # eager grant at node 2
        # only one of the two in-flight invalidations ever lands
        ck.on_invalidate(0, 0, 0x40)
        with pytest.raises(CoherenceViolation) as exc:
            ck.verify_quiesced()
        assert "stale copies never invalidated" in str(exc.value)
        assert "(1, 0)" in str(exc.value)

    def test_cross_node_exclusive_coexisting_with_sharer(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x80, MESI.MODIFIED, 1)
        # a buggy protocol granted a remote sharer without downgrading
        # the owner: inject the state the way such a bug would leave it
        audit = ck.lines[0x80]
        audit.holders[(1, 0)] = MESI.SHARED
        with pytest.raises(CoherenceViolation) as exc:
            ck.verify_quiesced()
        assert "coexists" in str(exc.value)

    def test_quiesce_failure_names_first_bad_line(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x140, MESI.SHARED, 0)
        ck.on_fill(3, 0, 0x140, MESI.MODIFIED, 2)
        with pytest.raises(CoherenceViolation) as exc:
            ck.verify_quiesced()
        assert "0x140" in str(exc.value)


class TestAccounting:
    def test_counters(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_invalidate(0, 0, 0x40)
        assert ck.fills == 1
        assert ck.invalidations == 1

    def test_invalidate_unknown_line_is_noop(self):
        ck = CoherenceChecker()
        ck.on_invalidate(0, 0, 0x9999)
        ck.verify_quiesced()

    def test_telemetry_counters(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 1)
        ck.on_downgrade(0, 0, 0x40)
        tel = ck.telemetry()
        assert tel["checker_fills"] == 1.0
        assert tel["checker_downgrades"] == 1.0
        assert tel["checker_lines"] == 1.0
        assert "trace_events" not in tel  # no trace attached
