"""Unit tests for the coherence invariant checker."""

import pytest

from repro.core import MESI
from repro.core.checker import CoherenceChecker, CoherenceViolation


class TestSingleWriterPerNode:
    def test_same_node_exclusive_over_shared_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        with pytest.raises(CoherenceViolation):
            ck.on_fill(0, 2, 0x40, MESI.MODIFIED, 1)

    def test_exclusive_after_invalidate_ok(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_invalidate(0, 0, 0x40)
        ck.on_fill(0, 2, 0x40, MESI.MODIFIED, 1)
        ck.verify_quiesced()

    def test_multiple_shared_ok(self):
        ck = CoherenceChecker()
        for cache in range(4):
            ck.on_fill(0, cache, 0x40, MESI.SHARED, 0)
        ck.verify_quiesced()


class TestEagerReplies:
    def test_cross_node_survivors_marked_stale(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 1)  # eager grant elsewhere
        # unresolved staleness fails at quiesce
        with pytest.raises(CoherenceViolation):
            ck.verify_quiesced()

    def test_late_invalidation_resolves_staleness(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 1)
        ck.on_invalidate(0, 0, 0x40)
        ck.verify_quiesced()

    def test_refill_with_new_epoch_clears_staleness(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 5)
        # the stale holder refilled with the fresh epoch (racing refill)
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 5)
        ck.on_invalidate(1, 0, 0x40)
        ck.verify_quiesced()

    def test_refill_with_old_version_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 5)
        with pytest.raises(CoherenceViolation):
            ck.on_fill(0, 0, 0x40, MESI.SHARED, 2)


class TestVersionMonotonicity:
    def test_regressed_exclusive_version_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 10)
        ck.on_invalidate(0, 0, 0x40)
        with pytest.raises(CoherenceViolation):
            ck.on_fill(1, 0, 0x40, MESI.MODIFIED, 3)


class TestDowngrade:
    def test_downgrade_allows_new_sharers(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 1)
        ck.on_downgrade(0, 0, 0x40)
        ck.on_fill(1, 0, 0x40, MESI.SHARED, 1)
        ck.verify_quiesced()

    def test_two_exclusives_at_quiesce_rejected(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.MODIFIED, 1)
        # bypass on_fill's own sweep by writing state directly (simulating
        # a buggy protocol that left two exclusive holders)
        audit = ck.lines[0x40]
        audit.holders[(1, 0)] = MESI.MODIFIED
        with pytest.raises(CoherenceViolation):
            ck.verify_quiesced()


class TestAccounting:
    def test_counters(self):
        ck = CoherenceChecker()
        ck.on_fill(0, 0, 0x40, MESI.SHARED, 0)
        ck.on_invalidate(0, 0, 0x40)
        assert ck.fills == 1
        assert ck.invalidations == 1

    def test_invalidate_unknown_line_is_noop(self):
        ck = CoherenceChecker()
        ck.on_invalidate(0, 0, 0x9999)
        ck.verify_quiesced()
