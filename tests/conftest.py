"""Shared fixtures for the test suite."""

import os

import pytest

# Keep experiment-grade runs small inside the test suite; benchmarks use
# the full scale.
os.environ.setdefault("REPRO_SCALE", "1.0")

# Shared hypothesis profiles: simulation-backed properties routinely blow
# the default 200 ms deadline on slow CI hosts, so the deadline is off
# globally instead of per-test.  CI sets HYPOTHESIS_PROFILE=ci, which
# additionally derandomizes example generation so every CI run executes
# the identical example set (failures reproduce locally by exporting the
# same profile).
try:
    from hypothesis import settings as _hyp_settings

    _hyp_settings.register_profile("default", deadline=None)
    _hyp_settings.register_profile("ci", deadline=None, derandomize=True)
    _hyp_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # property tests are skipped without hypothesis
    pass

from repro.core import CoherenceChecker, PiranhaSystem, preset  # noqa: E402
from repro.sim import Simulator  # noqa: E402


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def p1_system():
    """Single-node single-CPU Piranha with the coherence checker on."""
    checker = CoherenceChecker()
    system = PiranhaSystem(preset("P1"), num_nodes=1, checker=checker)
    system.checker_fixture = checker
    return system


@pytest.fixture
def p8_system():
    checker = CoherenceChecker()
    system = PiranhaSystem(preset("P8"), num_nodes=1, checker=checker)
    system.checker_fixture = checker
    return system


@pytest.fixture
def two_node_system():
    """Two P2 nodes with the checker on (fast multi-node fixture)."""
    checker = CoherenceChecker()
    system = PiranhaSystem(preset("P2"), num_nodes=2, checker=checker)
    system.checker_fixture = checker
    return system


def run_and_verify(system):
    """Run a system to completion and verify coherence invariants."""
    finish = system.run_to_completion()
    checker = getattr(system, "checker_fixture", None)
    if checker is not None:
        checker.verify_quiesced()
    return finish


@pytest.fixture
def run_checked():
    return run_and_verify
