"""Unit tests for the Alpha-like subset ISA."""

import pytest

from repro.isa import (
    AssemblyError,
    FunctionalCpu,
    Instruction,
    Mnemonic,
    SharedMemory,
    assemble,
    decode,
    encode,
    memcpy_wh64,
    spinlock_increment,
    vector_sum,
)


class TestEncoding:
    @pytest.mark.parametrize("instr", [
        Instruction(Mnemonic.LDQ, ra=1, rb=2, disp=-8),
        Instruction(Mnemonic.STQ, ra=31, rb=0, disp=32767),
        Instruction(Mnemonic.LDA, ra=5, rb=31, disp=-32768),
        Instruction(Mnemonic.ADDQ, ra=1, rb=2, rc=3),
        Instruction(Mnemonic.SUBQ, ra=1, literal=255, rc=3),
        Instruction(Mnemonic.CMPLE, ra=9, rb=10, rc=11),
        Instruction(Mnemonic.BNE, ra=3, disp=-1048576),
        Instruction(Mnemonic.BR, disp=1048575),
        Instruction(Mnemonic.WH64, rb=2, disp=64),
        Instruction(Mnemonic.LDQ_L, ra=1, rb=2),
        Instruction(Mnemonic.STQ_C, ra=1, rb=2),
        Instruction(Mnemonic.JMP, rb=7),
        Instruction(Mnemonic.HALT),
        Instruction(Mnemonic.NOP),
    ])
    def test_roundtrip(self, instr):
        assert decode(encode(instr)) == instr

    def test_words_are_32_bit(self):
        word = encode(Instruction(Mnemonic.MULQ, ra=31, rb=31, rc=31))
        assert 0 <= word < (1 << 32)

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Mnemonic.ADDQ, ra=32)

    def test_literal_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Mnemonic.ADDQ, literal=256)


class TestAssembler:
    def test_label_resolution(self):
        words = assemble("""
        start:  addq r1, #1, r1
                bne  r1, start
                halt
        """)
        assert len(words) == 3
        instr = decode(words[1])
        assert instr.mnem == Mnemonic.BNE
        assert instr.disp == -2

    def test_comments_and_blank_lines(self):
        words = assemble("""
            ; a comment
            nop       ; trailing

            halt
        """)
        assert len(words) == 2

    def test_memory_operand(self):
        instr = decode(assemble("ldq r1, -16(r2)")[0])
        assert instr.ra == 1 and instr.rb == 2 and instr.disp == -16

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1, r2, r3")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("x: nop\nx: halt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("addq r32, #1, r1")

    def test_numeric_branch_displacement(self):
        instr = decode(assemble("br 5")[0])
        assert instr.disp == 5


class TestFunctionalExecution:
    def test_arithmetic(self):
        mem = SharedMemory()
        cpu = FunctionalCpu(assemble("""
            lda   r1, 100(r31)
            lda   r2, 23(r31)
            addq  r1, r2, r3
            subq  r1, r2, r4
            mulq  r1, r2, r5
            and   r1, r2, r6
            bis   r1, r2, r7
            xor   r1, r2, r8
            halt
        """), mem)
        st = cpu.run()
        assert st.regs[3] == 123
        assert st.regs[4] == 77
        assert st.regs[5] == 2300
        assert st.regs[6] == 100 & 23
        assert st.regs[7] == 100 | 23
        assert st.regs[8] == 100 ^ 23

    def test_shifts_and_compares(self):
        cpu = FunctionalCpu(assemble("""
            lda   r1, 5(r31)
            sll   r1, #3, r2
            srl   r2, #1, r3
            cmpeq r1, #5, r4
            cmplt r1, #4, r5
            cmple r1, #5, r6
            halt
        """), SharedMemory())
        st = cpu.run()
        assert st.regs[2] == 40
        assert st.regs[3] == 20
        assert st.regs[4] == 1
        assert st.regs[5] == 0
        assert st.regs[6] == 1

    def test_r31_is_zero(self):
        cpu = FunctionalCpu(assemble("""
            lda   r31, 99(r31)
            addq  r31, #1, r1
            halt
        """), SharedMemory())
        st = cpu.run()
        assert st.regs[1] == 1

    def test_loads_and_stores(self):
        mem = SharedMemory()
        mem.store_q(0x100, 42)
        cpu = FunctionalCpu(assemble("""
            lda r2, 0x100(r31)
            ldq r1, 0(r2)
            addq r1, #1, r1
            stq r1, 8(r2)
            halt
        """), mem)
        cpu.run()
        assert mem.load_q(0x108) == 43

    def test_vector_sum_program(self):
        mem = SharedMemory()
        for i in range(20):
            mem.store_q(0x400 + i * 8, i)
        cpu = FunctionalCpu(vector_sum(0x400, 20), mem)
        assert cpu.run().regs[1] == sum(range(20))

    def test_memcpy_wh64_program(self):
        mem = SharedMemory()
        for i in range(16):
            mem.store_q(0x800 + i * 8, 0x1111 * (i + 1))
        FunctionalCpu(memcpy_wh64(0x800, 0x1000, 2), mem).run()
        for i in range(16):
            assert mem.load_q(0x1000 + i * 8) == 0x1111 * (i + 1)

    def test_nonterminating_program_capped(self):
        cpu = FunctionalCpu(assemble("x: br x"), SharedMemory())
        with pytest.raises(RuntimeError):
            cpu.run(max_instructions=100)


class TestLoadLockedStoreConditional:
    def test_uncontended_succeeds(self):
        mem = SharedMemory()
        cpu = FunctionalCpu(assemble("""
            lda   r2, 0x100(r31)
            ldq_l r1, 0(r2)
            addq  r1, #1, r1
            stq_c r1, 0(r2)
            halt
        """), mem, agent=0)
        st = cpu.run()
        assert st.regs[1] == 1  # success flag
        assert mem.load_q(0x100) == 1

    def test_intervening_store_breaks_lock(self):
        mem = SharedMemory()
        mem.store_q(0x100, 0)
        value = mem.load_locked(agent=0, addr=0x100)
        mem.store_q(0x100, 99)  # another agent writes the line
        assert not mem.store_conditional(agent=0, addr=0x100, value=value + 1)
        assert mem.load_q(0x100) == 99

    def test_spinlock_functional(self):
        mem = SharedMemory()
        FunctionalCpu(spinlock_increment(0x200, 0x240, 5), mem).run()
        assert mem.load_q(0x240) == 5

    def test_unaligned_access_rejected(self):
        with pytest.raises(ValueError):
            SharedMemory().load_q(0x101)
