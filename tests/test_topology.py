"""Unit tests for interconnect topologies (§2.6)."""

import pytest

from repro.interconnect import (
    Topology,
    TopologyError,
    attach_io_nodes,
    fully_connected,
    line,
    mesh2d,
    ring,
)


class TestChannelBudget:
    def test_processing_node_limited_to_four_channels(self):
        topo = Topology()
        for n in range(6):
            topo.add_node(n)
        for n in range(1, 5):
            topo.add_link(0, n)
        with pytest.raises(TopologyError):
            topo.add_link(0, 5)

    def test_io_node_limited_to_two_channels(self):
        topo = Topology()
        topo.add_node(0, "io")
        for n in (1, 2, 3):
            topo.add_node(n)
        topo.add_link(0, 1)
        topo.add_link(0, 2)
        with pytest.raises(TopologyError):
            topo.add_link(0, 3)

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_node(0)
        with pytest.raises(TopologyError):
            topo.add_link(0, 0)

    def test_1024_node_limit(self):
        topo = Topology()
        for n in range(1024):
            topo.add_node(n)
        with pytest.raises(TopologyError):
            topo.add_node(1024)


class TestFactories:
    def test_ring(self):
        topo = ring(8)
        assert len(topo.nodes) == 8
        assert topo.distance(0, 4) == 4
        assert topo.distance(0, 7) == 1

    def test_mesh(self):
        topo = mesh2d(4, 4)
        assert topo.distance(0, 15) == 6
        topo.validate()

    def test_fully_connected_max_five(self):
        topo = fully_connected(5)
        assert all(topo.distance(a, b) == 1
                   for a in range(5) for b in range(5) if a != b)
        with pytest.raises(TopologyError):
            fully_connected(6)

    def test_line(self):
        topo = line(4)
        assert topo.distance(0, 3) == 3

    def test_ring_with_io(self):
        topo = ring(4, io_nodes=[2])
        assert topo.kind(2) == "io"


class TestRouting:
    def test_minimal_next_hops_ring(self):
        topo = ring(6)
        # from 0 to 3 both directions are minimal
        assert set(topo.minimal_next_hops(0, 3)) == {1, 5}
        # from 0 to 2, only via 1
        assert set(topo.minimal_next_hops(0, 2)) == {1}

    def test_tables_invalidate_on_reconfiguration(self):
        topo = ring(6)
        assert topo.distance(0, 3) == 3
        topo.remove_link(0, 1)
        assert topo.distance(0, 1) == 5  # must go the long way now

    def test_remove_missing_link(self):
        topo = ring(4)
        with pytest.raises(TopologyError):
            topo.remove_link(0, 2)

    def test_validate_disconnected(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(TopologyError):
            topo.validate()


class TestAttachIoNodes:
    def test_io_nodes_dual_homed(self):
        topo = ring(4)
        added = attach_io_nodes(topo, 2)
        for node in added:
            assert topo.kind(node) == "io"
            assert len(topo.neighbors(node)) == 2  # redundancy (§2.6.1)
        topo.validate()
