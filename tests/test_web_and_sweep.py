"""Unit tests for the web workload and the sweep harness."""

import pytest

from repro.core import AccessKind, PiranhaSystem, preset
from repro.harness.sweep import replace_field, run_config, sweep_field
from repro.workloads import DssWorkload, OltpParams, OltpWorkload
from repro.workloads.web import WebParams, WebWorkload


class TestWebWorkload:
    def test_dss_shaped(self):
        """§6: AltaVista-like search 'exhibits behavior similar to DSS':
        busy-dominated, streaming index reads."""
        wl = WebWorkload(WebParams(queries=40, warmup_queries=10),
                         cpus_per_node=4)
        system = PiranhaSystem(preset("P4"), num_nodes=1)
        system.attach_workload(wl)
        system.run_to_completion()
        s = system.execution_summary()
        assert s["busy_ps"] / s["total_ps"] > 0.7

    def test_ilp_between_oltp_and_dss(self):
        assert OltpWorkload().ilp < WebWorkload().ilp <= DssWorkload().ilp

    def test_hot_index_head_cached(self):
        """The zipf-hot posting lists get re-read: some index misses must
        be served on-chip, unlike a pure table scan."""
        wl = WebWorkload(WebParams(queries=60, warmup_queries=20),
                         cpus_per_node=4)
        system = PiranhaSystem(preset("P4"), num_nodes=1)
        system.attach_workload(wl)
        system.run_to_completion()
        mb = system.miss_breakdown()
        assert mb["l2_hit"] + mb["l2_fwd"] > 0

    def test_deterministic(self):
        a = list(WebWorkload(WebParams(queries=3, warmup_queries=0),
                             cpus_per_node=1).thread_for(0, 0))
        b = list(WebWorkload(WebParams(queries=3, warmup_queries=0),
                             cpus_per_node=1).thread_for(0, 0))
        assert a == b


class TestReplaceField:
    def test_top_level(self):
        cfg = replace_field(preset("P8"), "cpus", 2)
        assert cfg.cpus == 2

    def test_nested(self):
        cfg = replace_field(preset("P8"), "l2.size_bytes", 1 << 21)
        assert cfg.l2.size_bytes == 1 << 21
        assert cfg.core == preset("P8").core  # untouched

    def test_core_field(self):
        cfg = replace_field(preset("P8"), "core.clock_mhz", 600.0)
        assert cfg.core.clock_mhz == 600.0

    def test_too_deep(self):
        with pytest.raises(ValueError):
            replace_field(preset("P8"), "a.b.c", 1)


class TestSweep:
    def _factory(self, config, num_nodes):
        return OltpWorkload(
            OltpParams(transactions=10, warmup_transactions=15),
            cpus_per_node=config.cpus, num_nodes=num_nodes)

    def test_l2_size_sweep_shapes(self):
        records = sweep_field("P2", self._factory, "l2.size_bytes",
                              [256 << 10, 1 << 20])
        assert len(records) == 2
        small, big = records
        # a bigger L2 can only reduce (or equal) the memory-miss share
        assert big["miss_mem_frac"] <= small["miss_mem_frac"] + 0.02
        assert all("throughput" in r for r in records)

    def test_run_config_metrics(self):
        record = run_config(preset("P1"), self._factory)
        assert record["busy_frac"] + record["l2_frac"] + record["mem_frac"] \
            == pytest.approx(1.0)
