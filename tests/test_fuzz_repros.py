"""Checked-in shrunk reproducers must keep reproducing.

Each JSON file under tests/repros/ is a self-contained minimal fuzz
program produced by the delta-debugging shrinker from a seeded failure
(here: deliberate protocol mutations — the regression suite for the
memory-model reference checker's detection power).  Replaying one must
yield exactly the recorded violation signature; replaying the same
program *without* its mutation must run clean, proving the program
exercises the injected bug and not some latent one.
"""

import dataclasses
import glob
import os

import pytest

from repro.fuzz import Reproducer, replay, run_fuzz_program

REPRO_DIR = os.path.join(os.path.dirname(__file__), "repros")
REPRO_FILES = sorted(glob.glob(os.path.join(REPRO_DIR, "*.json")))


def test_repros_exist():
    assert REPRO_FILES, "tests/repros/ must hold at least one reproducer"


@pytest.mark.parametrize("path", REPRO_FILES,
                         ids=[os.path.basename(p) for p in REPRO_FILES])
def test_reproducer_replays_to_recorded_violation(path):
    repro = Reproducer.load(path)
    assert repro.program.op_count <= 25, "reproducers must stay minimal"
    verdict = replay(repro)
    assert not verdict.ok
    assert verdict.signature == repro.signature
    assert verdict.kind == repro.kind


@pytest.mark.parametrize("path", REPRO_FILES,
                         ids=[os.path.basename(p) for p in REPRO_FILES])
def test_reproducer_is_clean_without_mutation(path):
    repro = Reproducer.load(path)
    assert repro.program.mutation, "checked-in repros carry a mutation"
    pristine = dataclasses.replace(repro.program, mutation=None)
    verdict = run_fuzz_program(pristine, check=True)
    assert verdict.ok, (
        f"unmutated replay of {os.path.basename(path)} failed: "
        f"{verdict.message}")
