"""Tests for the differential fuzzing subsystem (src/repro/fuzz/).

Covers the program representation, the seeded stimulus generator, the
axiomatic reference checker (unit-level, no simulator), the mutation
registry, end-to-end detection of injected protocol bugs, and the
delta-debugging shrinker.
"""

import dataclasses
import json

import pytest

from repro.fuzz import (
    MUTATIONS,
    FuzzProgram,
    MemoryModelViolation,
    ReferenceChecker,
    Reproducer,
    generate,
    params_for,
    replay,
    run_fuzz_program,
    shrink_failure,
    violation_signature,
)
from repro.fuzz.shrink import _ddmin
from repro.fuzz.stimulus import StimulusParams, build_pool


# ---------------------------------------------------------------------------
# program representation


def test_program_roundtrip():
    prog = generate(params_for(3, total_ops=120, nodes=2))
    clone = FuzzProgram.from_dict(prog.to_dict())
    assert clone == prog
    assert clone.canonical_json() == prog.canonical_json()


def test_program_validate_rejects_bad_programs():
    prog = generate(params_for(0, total_ops=60, nodes=1))
    with pytest.raises(ValueError):
        dataclasses.replace(prog, pool=(0x1001,)).validate()  # misaligned
    bad_slot = [list(ops) for ops in prog.ops]
    bad_slot[0] = [("ld", len(prog.pool), 1)]
    with pytest.raises(ValueError):
        prog.with_ops([tuple(map(tuple, ops)) for ops in bad_slot]).validate()
    bad_gap = [list(ops) for ops in prog.ops]
    bad_gap[0] = [("ld", 0, 0)]
    with pytest.raises(ValueError):
        prog.with_ops([tuple(map(tuple, ops)) for ops in bad_gap]).validate()


def test_reproducer_roundtrip(tmp_path):
    prog = generate(params_for(1, total_ops=60, nodes=1))
    repro = Reproducer(program=prog, signature="X:y", kind="y",
                       message="m", trace_window=["a", "b"],
                       shrunk_from_ops=60, shrink_runs=5)
    path = tmp_path / "r.json"
    repro.save(str(path))
    loaded = Reproducer.load(str(path))
    assert loaded.program == prog
    assert loaded.signature == "X:y"
    assert loaded.trace_window == ["a", "b"]
    with pytest.raises(ValueError):
        doc = json.loads(path.read_text())
        doc["schema"] = "other/9"
        Reproducer.from_dict(doc)


# ---------------------------------------------------------------------------
# stimulus generator


def test_generator_deterministic():
    a = generate(params_for(11, total_ops=200, nodes=2))
    b = generate(params_for(11, total_ops=200, nodes=2))
    assert a.canonical_json() == b.canonical_json()
    c = generate(params_for(12, total_ops=200, nodes=2))
    assert c.canonical_json() != a.canonical_json()


def test_generator_contention_shapes():
    params = StimulusParams(seed=5, pool_lines=8, false_share_pairs=2)
    pool = build_pool(params)
    # false-sharing pairs alias existing lines: more slots than lines
    assert len(pool) == 10
    assert len(set(pool)) == 8
    prog = generate(params_for(5, total_ops=400, nodes=2))
    kinds = [k for ops in prog.ops for k, _s, _g in ops]
    # the weighted mix produces every op class, membars included
    assert {"ld", "st", "wh", "mb"} <= set(kinds)
    prog.validate()


# ---------------------------------------------------------------------------
# reference checker axioms (unit-level, no simulator)


LINE = 0x4000_0000


def test_reference_lost_update():
    ref = ReferenceChecker(2)
    ref.on_write(0, 0, LINE, 1)
    with pytest.raises(MemoryModelViolation) as exc:
        ref.on_write(1, 0, LINE, 1)
    assert exc.value.kind == "lost-update"


def test_reference_version_skip():
    ref = ReferenceChecker(1)
    ref.on_write(0, 0, LINE, 1)
    with pytest.raises(MemoryModelViolation) as exc:
        ref.on_write(0, 1, LINE, 3)
    assert exc.value.kind == "version-skip"


def test_reference_read_coherence_regress():
    ref = ReferenceChecker(2)
    ref.on_write(0, 0, LINE, 1)
    ref.on_write(0, 1, LINE, 2)
    ref.on_read(1, 0, LINE, 2)
    with pytest.raises(MemoryModelViolation) as exc:
        ref.on_read(1, 1, LINE, 1)
    assert exc.value.kind == "coherence-regress"


def test_reference_stale_read_is_legal_without_membar():
    # Alpha-style relaxed ordering: reading an old (but previously
    # unseen) version with no membar in between is NOT a violation.
    ref = ReferenceChecker(2)
    ref.on_write(0, 0, LINE, 1)
    ref.on_write(0, 1, LINE, 2)
    ref.on_read(1, 0, LINE, 1)  # globally stale, locally fresh: legal
    assert ref.stale_reads == 1


def test_reference_mp_membar_axiom():
    # Message-passing: consumer membars after seeing the flag, so the
    # producer's pre-membar data write becomes a lower bound.
    ref = ReferenceChecker(2)
    DATA, FLAG = LINE, LINE + 64
    ref.on_write(0, 0, DATA, 1)      # producer: st data
    ref.on_membar(0)                 # producer: membar
    ref.on_write(0, 2, FLAG, 1)      # producer: st flag (carries frontier)
    ref.on_read(1, 0, FLAG, 1)       # consumer: sees new flag
    ref.on_membar(1)                 # consumer: membar acquires frontier
    with pytest.raises(MemoryModelViolation) as exc:
        ref.on_read(1, 2, DATA, 0)   # ...must now see data >= 1
    assert exc.value.kind == "mp-stale"


def test_reference_fabricated_version():
    ref = ReferenceChecker(1)
    with pytest.raises(MemoryModelViolation) as exc:
        ref.on_read(0, 0, LINE, 4)
    assert exc.value.kind == "fabricated-version"


def test_reference_zero_fill_telemetry():
    ref = ReferenceChecker(2)
    ref.on_write(0, 0, LINE, 1, kind="wh")
    ref.on_read(1, 0, LINE, 1)
    assert ref.zero_fill_reads == 1


def test_reference_final_check_write_count():
    ref = ReferenceChecker(1)
    ref.on_write(0, 0, LINE, 1)
    ref.on_write(0, 1, LINE, 2)
    ref.final_check([], {LINE: 2})                     # consistent: fine
    ref.write_counts[LINE] = 3                         # one write vanished
    with pytest.raises(MemoryModelViolation) as exc:
        ref.final_check([], {LINE: 2})
    assert exc.value.kind == "write-count-mismatch"


def test_reference_final_check_residual_fabricated():
    ref = ReferenceChecker(1)
    ref.on_write(0, 0, LINE, 1)
    with pytest.raises(MemoryModelViolation) as exc:
        ref.final_check([("node0.dl1-0", LINE, 7)], {})
    assert exc.value.kind == "residual-fabricated"


# ---------------------------------------------------------------------------
# end-to-end runs


def test_clean_run_accounts_every_op():
    prog = generate(params_for(7, total_ops=240, nodes=2))
    verdict = run_fuzz_program(prog)
    assert verdict.ok, verdict.message
    c = verdict.counts
    assert c["ops_executed"] == prog.op_count
    assert (c["ref_reads"] + c["ref_writes"] + c["ref_membars"]
            == c["ops_executed"])


def test_run_deterministic():
    prog = generate(params_for(9, total_ops=200, nodes=2))
    a = run_fuzz_program(prog)
    b = run_fuzz_program(prog)
    assert a.ok and b.ok
    assert a.counts == b.counts


def test_empty_program_is_clean():
    prog = generate(params_for(0, total_ops=60, nodes=1))
    empty = prog.with_ops([() for _ in prog.ops])
    assert run_fuzz_program(empty).ok


def test_mutation_registry_names():
    assert {"lost_inval", "stale_share", "skip_fence"} <= set(MUTATIONS)


def test_stale_share_caught_by_reference_not_sanitizer():
    # stale_share keeps every structure consistent (states, owners,
    # directory) and only corrupts the *value* a SHARED fill carries —
    # exactly the class of bug the structural sanitizer cannot see.
    prog = dataclasses.replace(
        generate(params_for(0, total_ops=240, nodes=2)),
        mutation="stale_share", mutation_period=3)
    verdict = run_fuzz_program(prog, check=True)
    assert not verdict.ok
    assert verdict.signature == "MemoryModelViolation:lost-update"
    assert verdict.trace_window  # protocol context captured


def test_lost_inval_caught():
    prog = dataclasses.replace(
        generate(params_for(0, total_ops=240, nodes=2)),
        mutation="lost_inval", mutation_period=2)
    verdict = run_fuzz_program(prog, check=True)
    assert not verdict.ok
    # either oracle may fire first; both identify the stale-copy bug
    assert verdict.signature.startswith(
        ("MemoryModelViolation:", "CoherenceViolation:"))


# ---------------------------------------------------------------------------
# shrinking


def test_ddmin_minimises_synthetic_predicate():
    ops = [("ld", i, 1) for i in range(40)]
    need = {ops[3], ops[17]}

    def fails(candidate):
        return need <= set(candidate)

    minimal = _ddmin(ops, fails)
    assert set(minimal) == need


def test_signature_normalises_addresses_and_counts():
    sig = violation_signature(RuntimeError("line 0x4000a000: 12 copies"))
    assert sig == "RuntimeError:line #: # copies"
    exc = MemoryModelViolation("mp-stale", "cpu3 op#9 detail")
    assert violation_signature(exc) == "MemoryModelViolation:mp-stale"


def test_shrink_to_small_reproducer_and_replay():
    prog = dataclasses.replace(
        generate(params_for(0, total_ops=240, nodes=2)),
        mutation="stale_share", mutation_period=3)
    verdict = run_fuzz_program(prog)
    assert not verdict.ok
    repro = shrink_failure(prog, verdict, budget=250)
    assert repro.program.op_count <= 25
    assert repro.program.op_count < prog.op_count
    assert repro.signature == verdict.signature
    again = replay(repro)
    assert not again.ok
    assert again.signature == repro.signature
