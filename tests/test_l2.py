"""Scenario tests for the L2 bank and intra-chip coherence (§2.3).

Requests are driven directly into a single-node system's memory system;
each test checks one path of the paper's protocol: non-inclusive fills,
victim write-backs, ownership-filtered replacements, L1-to-L1 forwards,
upgrades, and the clean-exclusive optimisation.
"""

import pytest

from repro.core import (
    MESI,
    AccessKind,
    CoherenceChecker,
    PiranhaSystem,
    ReplySource,
    preset,
)
from repro.core.messages import CacheId, MemRequest, RequestType


@pytest.fixture
def system():
    return PiranhaSystem(preset("P8"), num_nodes=1,
                         checker=CoherenceChecker())


def issue(system, cpu, kind, addr, reqtype=None, is_instr=False):
    """Issue one access and run to completion; returns (latency_ns, source)."""
    out = {}

    def done(latency_ps, source):
        out["latency_ns"] = latency_ps / 1000.0
        out["source"] = source

    req = MemRequest(cpu_id=cpu, kind=kind, addr=addr, is_instr=is_instr,
                     done=done, node=0)
    if reqtype is None:
        from repro.core.messages import request_for

        reqtype = request_for(kind, MESI.INVALID)
    req.issue_time = system.sim.now
    system.nodes[0].issue_miss(req, reqtype)
    system.sim.run()
    return out["latency_ns"], out["source"]


LINE = 0x40_0000  # maps to bank 0


class TestMissPaths:
    def test_cold_read_fills_from_memory_at_80ns(self, system):
        latency, source = issue(system, 0, AccessKind.LOAD, LINE)
        assert source == ReplySource.LOCAL_MEM
        assert latency == pytest.approx(80.0, abs=1.0)

    def test_cold_read_granted_clean_exclusive(self, system):
        issue(system, 0, AccessKind.LOAD, LINE)
        line = system.nodes[0].l1d[0].peek(LINE)
        assert line.state == MESI.EXCLUSIVE  # clean-exclusive optimisation

    def test_memory_fill_does_not_allocate_in_l2(self, system):
        """§2.3: L1 misses that also miss in the L2 are filled directly
        from memory, without allocating in the L2."""
        issue(system, 0, AccessKind.LOAD, LINE)
        bank = system.nodes[0].bank_for(LINE)
        assert bank._l2_line(LINE) is None
        assert bank.resident_lines() == 0

    def test_store_miss_fills_modified(self, system):
        issue(system, 0, AccessKind.STORE, LINE)
        line = system.nodes[0].l1d[0].peek(LINE)
        assert line.state == MESI.MODIFIED
        assert line.dirty


class TestL1ToL1Forward:
    def test_read_forwarded_from_owner_at_24ns(self, system):
        issue(system, 0, AccessKind.STORE, LINE)     # cpu0 owns M
        latency, source = issue(system, 1, AccessKind.LOAD, LINE)
        assert source == ReplySource.L2_FWD
        assert latency == pytest.approx(24.0, abs=1.0)

    def test_forward_downgrades_owner(self, system):
        issue(system, 0, AccessKind.STORE, LINE)
        issue(system, 1, AccessKind.LOAD, LINE)
        assert system.nodes[0].l1d[0].peek(LINE).state == MESI.SHARED
        assert system.nodes[0].l1d[1].peek(LINE).state == MESI.SHARED

    def test_ownership_and_dirtiness_travel_to_requester(self, system):
        """§2.3: the owner is 'typically the last requester'; the dirty
        master copy follows ownership so exactly one write-back happens."""
        issue(system, 0, AccessKind.STORE, LINE)
        issue(system, 1, AccessKind.LOAD, LINE)
        bank = system.nodes[0].bank_for(LINE)
        assert bank.dup.owner(LINE) == CacheId.encode(1, False)
        assert system.nodes[0].l1d[1].peek(LINE).dirty
        assert not system.nodes[0].l1d[0].peek(LINE).dirty

    def test_store_forward_invalidates_other_copies(self, system):
        issue(system, 0, AccessKind.STORE, LINE)
        issue(system, 1, AccessKind.LOAD, LINE)
        issue(system, 2, AccessKind.STORE, LINE)
        assert system.nodes[0].l1d[0].peek(LINE) is None
        assert system.nodes[0].l1d[1].peek(LINE) is None
        assert system.nodes[0].l1d[2].peek(LINE).state == MESI.MODIFIED

    def test_instruction_cache_kept_coherent(self, system):
        """§2.1: unlike other Alphas, the iL1 is kept coherent by
        hardware."""
        issue(system, 0, AccessKind.IFETCH, LINE, is_instr=True)
        issue(system, 1, AccessKind.STORE, LINE)
        assert system.nodes[0].l1i[0].peek(LINE) is None


class TestVictimCacheBehaviour:
    def _fill_and_evict(self, system, cpu=0, dirty=False):
        """Fill LINE then force it out of cpu's dL1 by filling both ways of
        its set."""
        kind = AccessKind.STORE if dirty else AccessKind.LOAD
        issue(system, cpu, kind, LINE)
        l1 = system.nodes[0].l1d[cpu]
        set_stride = l1.num_sets * 64
        issue(system, cpu, AccessKind.LOAD, LINE + set_stride)
        issue(system, cpu, AccessKind.LOAD, LINE + 2 * set_stride)

    def test_clean_owner_eviction_fills_l2(self, system):
        """Even clean L1 victims write back to the L2 when owned — the L2
        is a victim cache (§2.3)."""
        self._fill_and_evict(system, dirty=False)
        bank = system.nodes[0].bank_for(LINE)
        assert bank._l2_line(LINE) is not None
        assert bank.c_l1_wb_owner.value >= 1

    def test_dirty_eviction_carries_data(self, system):
        self._fill_and_evict(system, dirty=True)
        bank = system.nodes[0].bank_for(LINE)
        l2line = bank._l2_line(LINE)
        assert l2line.dirty
        assert l2line.version == 1

    def test_l2_hit_after_victim_fill(self, system):
        self._fill_and_evict(system)
        latency, source = issue(system, 1, AccessKind.LOAD, LINE)
        assert source == ReplySource.L2_HIT
        assert latency == pytest.approx(16.0, abs=1.0)

    def test_non_owner_eviction_no_writeback(self, system):
        """After a forward, the old owner's copy is a non-owner S line; its
        replacement must NOT write back (the write-back filter)."""
        issue(system, 0, AccessKind.STORE, LINE)
        issue(system, 1, AccessKind.LOAD, LINE)   # ownership moved to cpu1
        l1 = system.nodes[0].l1d[0]
        set_stride = l1.num_sets * 64
        bank = system.nodes[0].bank_for(LINE)
        before = bank.c_l1_wb_owner.value
        issue(system, 0, AccessKind.LOAD, LINE + set_stride)
        issue(system, 0, AccessKind.LOAD, LINE + 2 * set_stride)
        assert system.nodes[0].l1d[0].peek(LINE) is None
        assert bank.c_l1_wb_owner.value == before
        assert bank.c_l1_evict_clean.value >= 1


class TestUpgrades:
    def test_store_to_shared_upgrades_locally(self, system):
        issue(system, 0, AccessKind.STORE, LINE)
        issue(system, 1, AccessKind.LOAD, LINE)     # both share now
        latency, source = issue(system, 0, AccessKind.STORE, LINE,
                                reqtype=RequestType.EXCLUSIVE)
        assert source in (ReplySource.L2_HIT, ReplySource.L2_FWD)
        assert system.nodes[0].l1d[0].peek(LINE).state == MESI.MODIFIED
        assert system.nodes[0].l1d[1].peek(LINE) is None

    def test_upgrade_is_fast(self, system):
        issue(system, 0, AccessKind.STORE, LINE)
        issue(system, 1, AccessKind.LOAD, LINE)
        latency, _ = issue(system, 1, AccessKind.STORE, LINE,
                           reqtype=RequestType.EXCLUSIVE)
        assert latency < 16.0  # control-only grant, no data transfer


class TestWh64:
    def test_wh64_single_node_skips_memory(self, system):
        """Exclusive-without-data: no fetch of the line's contents."""
        latency, source = issue(system, 0, AccessKind.WH64, LINE)
        assert latency < 20.0  # far below the 80 ns memory fill
        bank = system.nodes[0].bank_for(LINE)
        assert bank.c_wh64_data_avoided.value == 1
        assert system.nodes[0].l1d[0].peek(LINE).state == MESI.MODIFIED


class TestPendingConflicts:
    def test_conflicting_requests_serialise(self, system):
        """§2.3: a pending entry blocks conflicting requests for the
        duration of the original transaction."""
        results = []

        def make_done(tag):
            def done(lat, src):
                results.append((tag, system.sim.now, src))
            return done

        node = system.nodes[0]
        for cpu in range(3):
            req = MemRequest(cpu_id=cpu, kind=AccessKind.STORE, addr=LINE,
                             is_instr=False, done=make_done(cpu), node=0)
            req.issue_time = 0
            node.issue_miss(req, RequestType.READ_EXCLUSIVE)
        system.sim.run()
        assert len(results) == 3
        bank = node.bank_for(LINE)
        # at least the two later requests conflicted (waiters that re-queue
        # behind each other's grants count again)
        assert bank.c_conflicts.value >= 2
        # exactly one went to memory; the others were served on-chip
        sources = [src for _, _, src in results]
        assert sources.count(ReplySource.LOCAL_MEM) == 1

    def test_checker_clean_after_conflict_storm(self, system):
        for cpu in range(8):
            for i in range(4):
                issue(system, cpu, AccessKind.STORE, LINE + i * 64)
        system.checker.verify_quiesced()


class TestMissBreakdownAccounting:
    def test_fig6b_counters(self, system):
        issue(system, 0, AccessKind.LOAD, LINE)          # memory
        issue(system, 1, AccessKind.LOAD, LINE)          # fwd from cpu0
        # force cpu1's copy (owner) out to the L2, then hit it
        l1 = system.nodes[0].l1d[1]
        stride = l1.num_sets * 64
        issue(system, 1, AccessKind.LOAD, LINE + stride)
        issue(system, 1, AccessKind.LOAD, LINE + 2 * stride)
        issue(system, 2, AccessKind.LOAD, LINE)          # L2 hit
        mb = system.miss_breakdown()
        assert mb["l2_miss"] >= 1
        assert mb["l2_fwd"] >= 1
        assert mb["l2_hit"] >= 1
