"""Unit tests for interconnect packet formats (§2.6)."""

import pytest

from repro.interconnect import DATA_BEARING, Lane, Packet, PacketType


class TestWireSizes:
    def test_short_packet_is_128_bits(self):
        pkt = Packet(PacketType.READ, src=0, dst=1, addr=0x40)
        assert pkt.size_bits == 128
        assert pkt.wire_cycles == 2

    def test_long_packet_is_640_bits(self):
        pkt = Packet(PacketType.DATA_REPLY, src=0, dst=1, addr=0x40)
        assert pkt.size_bits == 128 + 512
        assert pkt.wire_cycles == 10

    def test_data_bearing_types(self):
        assert PacketType.WRITEBACK in DATA_BEARING
        assert PacketType.DATA_REPLY in DATA_BEARING
        assert PacketType.READ not in DATA_BEARING


class TestLaneAssignment:
    """Requests to home ride L; forwards/replies/writebacks ride H (§2.5.3)."""

    def test_home_requests_use_low_lane(self):
        for ptype in (PacketType.READ, PacketType.READ_EXCLUSIVE,
                      PacketType.EXCLUSIVE, PacketType.EXCLUSIVE_NO_DATA):
            assert Packet(ptype, 0, 1).lane == Lane.L

    def test_writeback_uses_high_lane(self):
        assert Packet(PacketType.WRITEBACK, 0, 1).lane == Lane.H

    def test_forwards_and_replies_use_high_lane(self):
        for ptype in (PacketType.FWD_READ, PacketType.INVALIDATE,
                      PacketType.DATA_REPLY, PacketType.INVAL_ACK):
            assert Packet(ptype, 0, 1).lane == Lane.H

    def test_io_lane(self):
        assert Packet(PacketType.INTERRUPT, 0, 1).lane == Lane.IO


class TestHeaderPacking:
    def test_roundtrip(self):
        pkt = Packet(PacketType.FWD_READ_EXCLUSIVE, src=1000, dst=3,
                     addr=0xABCDE40, txn_id=0x1234, priority=2, age=17)
        out = Packet.unpack_header(pkt.pack_header())
        assert out.ptype == pkt.ptype
        assert out.src == pkt.src and out.dst == pkt.dst
        assert out.addr == pkt.addr & ~63
        assert out.txn_id == pkt.txn_id
        assert out.priority == 2
        assert out.age == 17
        assert out.lane == pkt.lane

    def test_header_is_128_bits(self):
        pkt = Packet(PacketType.READ, src=1023, dst=1023,
                     addr=(1 << 44) * 64 - 64, txn_id=0xFFFF, age=255)
        header = pkt.pack_header()
        assert 0 <= header < (1 << 128)

    def test_src_exceeding_1024_nodes_rejected(self):
        pkt = Packet(PacketType.READ, src=1024, dst=0)
        with pytest.raises(ValueError):
            pkt.pack_header()

    def test_bad_priority_rejected(self):
        with pytest.raises(ValueError):
            Packet(PacketType.READ, 0, 1, priority=4)

    def test_age_saturates_at_255(self):
        pkt = Packet(PacketType.READ, 0, 1, age=300)
        out = Packet.unpack_header(pkt.pack_header())
        assert out.age == 255


class TestClassification:
    def test_is_request(self):
        assert Packet(PacketType.READ, 0, 1).is_request()
        assert Packet(PacketType.CMI_INVALIDATE, 0, 1).is_request()
        assert not Packet(PacketType.DATA_REPLY, 0, 1).is_request()
        assert not Packet(PacketType.WRITEBACK_ACK, 0, 1).is_request()

    def test_sixteen_major_types(self):
        assert len(PacketType) == 16
