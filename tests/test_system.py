"""Unit tests for the multi-node system builder."""

import pytest

from repro.core import AccessKind, PiranhaSystem, preset
from repro.core.system import default_topology
from repro.workloads import MicroParams, OltpParams, OltpWorkload, UniformRandom


class TestDefaultTopology:
    def test_single_node(self):
        assert default_topology(1).nodes == [0]

    def test_small_systems_fully_connected(self):
        topo = default_topology(4)
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert topo.distance(a, b) == 1  # flat Table-1 latencies

    def test_large_systems_ring(self):
        topo = default_topology(8)
        assert topo.distance(0, 4) == 4


class TestSystemConstruction:
    def test_node_count(self):
        system = PiranhaSystem(preset("P2"), num_nodes=3)
        assert len(system.nodes) == 3
        assert system.num_nodes == 3

    def test_single_node_has_no_routers(self):
        system = PiranhaSystem(preset("P2"), num_nodes=1)
        assert system.routers == {}

    def test_multi_node_fully_wired(self):
        system = PiranhaSystem(preset("P2"), num_nodes=3)
        assert set(system.routers) == {0, 1, 2}
        for node in system.nodes:
            assert node._send_packet_fn is not None

    def test_io_nodes_counted(self):
        system = PiranhaSystem(preset("P2"), num_nodes=2, io_nodes=2)
        assert system.num_proc_nodes == 2
        assert system.num_nodes == 4
        assert len(system.io) == 2
        kinds = [system.topology.kind(n) for n in system.topology.nodes]
        assert kinds.count("io") == 2

    def test_directory_per_node(self):
        system = PiranhaSystem(preset("P2"), num_nodes=3)
        assert len(system.dirstores) == 3
        assert system.dirstores[2].node == 2


class TestRunControl:
    def test_run_to_completion_returns_finish(self):
        system = PiranhaSystem(preset("P1"), num_nodes=1)
        wl = UniformRandom(MicroParams(iterations=50, warmup=10, lines=32),
                           cpus_per_node=1)
        system.attach_workload(wl)
        finish = system.run_to_completion()
        assert finish > 0
        assert all(c.finished for c in system.all_cpus())

    def test_stall_detection(self):
        """A workload thread that never finishes trips the stall guard."""
        system = PiranhaSystem(preset("P1"), num_nodes=1)

        class Stuck:
            def thread_for(self, node, cpu):
                from repro.workloads.base import WorkloadThread

                # an empty event queue with the CPU still 'running' cannot
                # happen through the normal APIs; emulate by a thread that
                # raises — run_to_completion surfaces it
                def gen():
                    raise RuntimeError("boom")
                    yield  # pragma: no cover

                return WorkloadThread(gen())

        system.attach_workload(Stuck())
        with pytest.raises(RuntimeError):
            system.run_to_completion()

    def test_warmup_resets_bank_stats(self):
        system = PiranhaSystem(preset("P2"), num_nodes=1)
        wl = OltpWorkload(OltpParams(transactions=5, warmup_transactions=5),
                          cpus_per_node=2)
        system.attach_workload(wl)
        system.run_to_completion()
        # stats cover only the measured phase: far fewer requests than the
        # full run made
        total_refs = sum(c.refs for c in system.all_cpus())
        requests = sum(b.c_requests.value for b in system.nodes[0].banks)
        assert requests < total_refs  # misses only, post-warmup only

    def test_summary_keys(self):
        system = PiranhaSystem(preset("P1"), num_nodes=1)
        wl = UniformRandom(MicroParams(iterations=30, warmup=5, lines=16),
                           cpus_per_node=1)
        system.attach_workload(wl)
        system.run_to_completion()
        summary = system.execution_summary()
        assert {"busy_ps", "l2_stall_ps", "mem_stall_ps", "total_ps",
                "instructions"} == set(summary)
