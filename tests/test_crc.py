"""Unit tests for the channel CRC."""

import pytest

from repro.interconnect import crc16, crc16_bitwise, crc16_words


class TestCrc16:
    def test_table_matches_bitwise(self):
        for data in (b"", b"\x00", b"piranha", bytes(range(256))):
            assert crc16(data) == crc16_bitwise(data)

    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1
        assert crc16(b"123456789") == 0x29B1

    def test_detects_single_byte_change(self):
        base = crc16(b"hello world")
        assert crc16(b"hellp world") != base

    def test_detects_transposition(self):
        assert crc16(b"ab") != crc16(b"ba")


class TestCrcWords:
    def test_word_crc_matches_bytes(self):
        words = [0x1234, 0x5678]
        assert crc16_words(words) == crc16(b"\x12\x34\x56\x78")

    def test_rejects_wide_words(self):
        with pytest.raises(ValueError):
            crc16_words([1 << 16])
