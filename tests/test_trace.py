"""Unit tests for trace recording/replay."""

import pytest

from repro.core import AccessKind, PiranhaSystem, preset
from repro.workloads import OltpParams, OltpWorkload
from repro.workloads.base import WorkloadThread
from repro.workloads.trace import (
    TraceError,
    TraceWorkload,
    read_trace,
    record_thread,
    record_workload,
)


def small_oltp(cpus=2):
    return OltpWorkload(OltpParams(transactions=3, warmup_transactions=1),
                        cpus_per_node=cpus)


class TestRoundtrip:
    def test_plain_text(self, tmp_path):
        wl = small_oltp()
        path = tmp_path / "t.trace"
        n = record_thread(wl.thread_for(0, 0), path)
        ilp, items = read_trace(path)
        assert len(items) == n
        assert ilp == wl.ilp
        assert items == list(small_oltp().thread_for(0, 0))

    def test_gzip(self, tmp_path):
        wl = small_oltp()
        path = tmp_path / "t.trace.gz"
        record_thread(wl.thread_for(0, 0), path)
        _, items = read_trace(path)
        assert items == list(small_oltp().thread_for(0, 0))

    def test_max_items(self, tmp_path):
        wl = small_oltp()
        path = tmp_path / "t.trace"
        n = record_thread(wl.thread_for(0, 0), path, max_items=10)
        assert n == 10
        _, items = read_trace(path)
        assert len(items) == 10

    def test_kinds_preserved(self, tmp_path):
        items_in = [
            (5, AccessKind.LOAD, 0x1000, True),
            (0, AccessKind.WH64, 0x2000, False),
            (3, None, 0, True),
            (1, AccessKind.IFETCH, 0x3000, True),
        ]
        path = tmp_path / "k.trace"
        record_thread(WorkloadThread(iter(items_in), ilp=1.7), path)
        ilp, items = read_trace(path)
        assert items == items_in
        assert ilp == 1.7


class TestErrors:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_record(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#repro-trace v1 ilp=1.0\n1 2\n")
        with pytest.raises(TraceError):
            read_trace(path)


class TestTraceWorkload:
    def test_replay_through_simulator(self, tmp_path):
        wl = small_oltp()
        traced = record_workload(wl, tmp_path, nodes=1, cpus_per_node=2)
        system = PiranhaSystem(preset("P2"), num_nodes=1)
        system.attach_workload(traced)
        finish = system.run_to_completion()
        assert finish > 0

    def test_replay_deterministically_matches_generator(self, tmp_path):
        def run(workload):
            system = PiranhaSystem(preset("P2"), num_nodes=1)
            system.attach_workload(workload)
            return system.run_to_completion()

        t_gen = run(small_oltp())
        traced = record_workload(small_oltp(), tmp_path, nodes=1,
                                 cpus_per_node=2)
        t_replay = run(traced)
        assert t_gen == t_replay

    def test_missing_cpu_gets_none(self, tmp_path):
        traced = record_workload(small_oltp(), tmp_path, nodes=1,
                                 cpus_per_node=2)
        assert traced.thread_for(0, 5) is None
