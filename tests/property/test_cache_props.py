"""Property-based tests on cache-structure invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MESI, AccessKind, L1Params
from repro.core.l1 import L1Cache

lines = st.integers(min_value=0, max_value=4095).map(lambda i: i * 64)


class TestL1Invariants:
    @settings(max_examples=40)
    @given(st.lists(lines, min_size=1, max_size=300))
    def test_associativity_never_exceeded(self, addrs):
        l1 = L1Cache(L1Params(size_bytes=4096, assoc=2), 0, False)
        for addr in addrs:
            l1.fill(addr, MESI.SHARED, owner=False)
        for s in l1.sets:
            assert len(s) <= 2

    @settings(max_examples=40)
    @given(st.lists(lines, min_size=1, max_size=300))
    def test_resident_count_bounded_by_capacity(self, addrs):
        l1 = L1Cache(L1Params(size_bytes=4096, assoc=2), 0, False)
        for addr in addrs:
            l1.fill(addr, MESI.EXCLUSIVE, owner=True)
        assert l1.resident_lines() <= 4096 // 64

    @settings(max_examples=40)
    @given(st.lists(lines, min_size=1, max_size=200))
    def test_fill_then_lookup_hits(self, addrs):
        """The most recent fill of a set is always still resident."""
        l1 = L1Cache(L1Params(size_bytes=4096, assoc=2), 0, False)
        for addr in addrs:
            l1.fill(addr, MESI.SHARED, owner=False)
            assert l1.lookup(addr, AccessKind.LOAD).hit

    @settings(max_examples=40)
    @given(st.lists(st.tuples(lines, st.booleans()), min_size=1, max_size=200))
    def test_eviction_conservation(self, ops):
        """fills - evictions == resident lines (nothing vanishes)."""
        l1 = L1Cache(L1Params(size_bytes=4096, assoc=2), 0, False)
        installed = 0
        evicted = 0
        resident = set()
        for addr, _ in ops:
            if addr in resident:
                l1.fill(addr, MESI.SHARED, owner=False)
                continue
            ev = l1.fill(addr, MESI.SHARED, owner=False)
            installed += 1
            resident.add(addr)
            if ev is not None:
                evicted += 1
                resident.discard(ev.addr)
        assert l1.resident_lines() == installed - evicted == len(resident)

    @settings(max_examples=40)
    @given(st.lists(lines, min_size=1, max_size=100), lines)
    def test_invalidate_removes_exactly_one(self, addrs, target):
        l1 = L1Cache(L1Params(size_bytes=8192, assoc=2), 0, False)
        for addr in addrs:
            l1.fill(addr, MESI.SHARED, owner=False)
        before = l1.resident_lines()
        removed = l1.invalidate(target)
        after = l1.resident_lines()
        assert after == before - (1 if removed is not None else 0)
        assert l1.peek(target) is None
