"""Property-based tests for cruise-missile invalidation planning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import MAX_CMI_MESSAGES, mesh2d, plan_cmi, ring

nodes16 = st.integers(min_value=0, max_value=15)


class TestCmiPlanProperties:
    @settings(max_examples=60)
    @given(st.sets(nodes16, max_size=16), nodes16, nodes16)
    def test_plan_invariants(self, sharers, home, requester):
        topo = mesh2d(4, 4)
        plan = plan_cmi(topo, home, requester, sharers)
        # 1. bounded injection (the paper's linear-buffering prerequisite)
        assert plan.messages_injected <= MAX_CMI_MESSAGES
        # 2. exact coverage of everyone but the requester
        assert plan.covered() == frozenset(sharers) - {requester}
        # 3. chains are disjoint (each node invalidated exactly once)
        seen = []
        for chain in plan.chains:
            seen.extend(chain)
        assert len(seen) == len(set(seen))
        # 4. no empty chains
        assert all(chain for chain in plan.chains)

    @settings(max_examples=30)
    @given(st.sets(st.integers(min_value=0, max_value=9), min_size=5,
                   max_size=10))
    def test_chains_balanced(self, sharers):
        topo = ring(10)
        plan = plan_cmi(topo, 0, 0, sharers)
        lengths = [len(c) for c in plan.chains]
        assert max(lengths) - min(lengths) <= 1
