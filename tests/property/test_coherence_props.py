"""Property-based coherence testing: random access interleavings across a
multi-node system must satisfy the checker's invariants and functional
read-your-writes expectations."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AccessKind, CoherenceChecker, PiranhaSystem, preset
from repro.workloads.base import WorkloadThread

access_kinds = st.sampled_from(
    [AccessKind.LOAD, AccessKind.STORE, AccessKind.WH64])

op = st.tuples(
    st.integers(min_value=0, max_value=3),   # global cpu index
    access_kinds,
    st.integers(min_value=0, max_value=15),  # hot line index
)


class RecordedWorkload:
    def __init__(self, streams):
        self.streams = streams

    def thread_for(self, node, cpu):
        items = self.streams.get((node, cpu))
        if not items:
            return None
        return WorkloadThread(iter(items))


@settings(max_examples=15,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op, min_size=1, max_size=120))
def test_random_interleavings_stay_coherent(ops):
    """Any random mix of loads/stores/wh64 over hot shared lines across a
    2-node x 2-CPU system quiesces with coherence invariants intact."""
    streams = {}
    for gcpu, kind, line in ops:
        node, cpu = divmod(gcpu, 2)
        streams.setdefault((node, cpu), []).append(
            (2, kind, line * 64, True))
    checker = CoherenceChecker()
    system = PiranhaSystem(preset("P2"), num_nodes=2, checker=checker)
    system.attach_workload(RecordedWorkload(streams))
    system.run_to_completion()
    checker.verify_quiesced()


@settings(max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op, min_size=1, max_size=60))
def test_versions_monotonic_in_memory(ops):
    """Committed memory versions only ever grow."""
    streams = {}
    for gcpu, kind, line in ops:
        node, cpu = divmod(gcpu, 2)
        streams.setdefault((node, cpu), []).append(
            (2, kind, line * 64, True))
    system = PiranhaSystem(preset("P2"), num_nodes=2)
    versions_seen = {}
    system.attach_workload(RecordedWorkload(streams))
    orig_set = type(system.nodes[0]).set_mem_version

    system.run_to_completion()
    for line, version in system.mem_versions.items():
        assert version >= 0
