"""Property-based tests for the microcode assembler/sequencer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.microcode import (
    Assembler,
    Environment,
    Instr,
    Op,
    Sequencer,
    Word,
)
from repro.core.tsrf import TsrfEntry

encodable = st.builds(
    Word,
    op=st.sampled_from(list(Op)),
    arg1=st.integers(0, 15),
    arg2=st.integers(0, 15),
    next_addr=st.integers(0, 1023),
)


class TestWordProperties:
    @given(encodable)
    def test_roundtrip(self, word):
        assert Word.decode(word.encode()) == word

    @given(encodable)
    def test_fits_21_bits(self, word):
        assert 0 <= word.encode() < (1 << 21)

    @given(encodable, encodable)
    def test_injective(self, a, b):
        if a != b:
            assert a.encode() != b.encode()


def straight_line_program(n_actions):
    """A chain of SET instructions ending at END."""
    instrs = [Instr(Op.SET, f"a{i}") for i in range(n_actions)]
    instrs[0].label = "start"
    instrs[-1].next = "end"
    return instrs


class TestSequencerProperties:
    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=14))
    def test_straight_line_executes_all(self, n):
        asm = Assembler("p")
        program = asm.assemble(straight_line_program(n))
        fired = []
        env = Environment.bind(
            program, {}, {}, {},
            {f"a{i}": (lambda tag: lambda e, op: fired.append(tag))(i)
             for i in range(n)},
        )
        entry = TsrfEntry(0)
        entry.valid = True
        entry.pc = program.entry_points["start"]
        executed, _ = Sequencer(program, env).run(entry)
        assert executed == n
        assert fired == list(range(n))

    @settings(max_examples=30)
    @given(st.dictionaries(st.integers(0, 15), st.just("target"),
                           min_size=1, max_size=16),
           st.integers(0, 15))
    def test_branch_tables_dispatch_exactly(self, targets, code):
        """A TEST with an arbitrary target map dispatches to 'hit' iff the
        code is mapped, and the unmapped codes are unreachable."""
        asm = Assembler("p")
        program = asm.assemble([
            Instr(Op.TEST, "sel", label="start", targets=dict(targets)),
            Instr(Op.SET, "hit", label="target", next="end"),
        ])
        fired = []
        env = Environment.bind(
            program, {}, {},
            {"sel": lambda e: code},
            {"hit": lambda e, op: fired.append(1)},
        )
        entry = TsrfEntry(0)
        entry.valid = True
        entry.pc = program.entry_points["start"]
        seq = Sequencer(program, env)
        if code in targets:
            seq.run(entry)
            assert fired == [1]
        else:
            try:
                seq.run(entry)
            except Exception:
                pass  # unprogrammed slot: detected, not silently wrong
            assert fired == []

    @settings(max_examples=20)
    @given(st.integers(1, 10))
    def test_microstore_usage_accounting(self, n):
        asm = Assembler("p")
        program = asm.assemble(straight_line_program(n))
        assert program.words_used == n
