"""Property-based tests for the 44-bit directory codec (§2.5.2)."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.directory import (
    DIRECTORY_BITS,
    MAX_POINTERS,
    DirectoryEntry,
    DirState,
    add_sharer,
    decode,
    encode,
    make_exclusive,
)

N = 1024
nodes = st.integers(min_value=0, max_value=N - 1)


class TestDirectoryProperties:
    @given(st.sets(nodes, min_size=1, max_size=MAX_POINTERS))
    def test_limited_pointer_exact(self, sharers):
        entry = DirectoryEntry(DirState.SHARED, frozenset(sharers), None)
        out = decode(encode(entry, N), N)
        assert out.sharers == frozenset(sharers)

    @given(st.sets(nodes, min_size=1, max_size=60))
    def test_coarse_vector_superset(self, sharers):
        entry = DirectoryEntry(DirState.SHARED_COARSE, frozenset(sharers), None)
        out = decode(encode(entry, N), N)
        assert out.sharers >= frozenset(sharers)

    @given(nodes)
    def test_exclusive_roundtrip(self, owner):
        out = decode(encode(make_exclusive(owner), N), N)
        assert out.owner == owner
        assert out.state == DirState.EXCLUSIVE

    @given(st.lists(nodes, min_size=1, max_size=40, unique=True))
    def test_incremental_add_never_loses_sharers(self, order):
        """Whatever the add order, the decoded entry covers every sharer
        (pointer form exactly; coarse form as a superset)."""
        entry = DirectoryEntry.uncached()
        for node in order:
            entry = add_sharer(entry, node, N)
        out = decode(encode(entry, N), N)
        assert out.sharers >= frozenset(order)

    @given(st.sets(nodes, min_size=MAX_POINTERS + 1, max_size=50))
    def test_overflow_switches_representation(self, sharers):
        entry = DirectoryEntry.uncached()
        for node in sharers:
            entry = add_sharer(entry, node, N)
        assert entry.state == DirState.SHARED_COARSE

    @given(st.sets(nodes, min_size=1, max_size=60))
    def test_encoding_fits_44_bits(self, sharers):
        state = (DirState.SHARED if len(sharers) <= MAX_POINTERS
                 else DirState.SHARED_COARSE)
        entry = DirectoryEntry(state, frozenset(sharers), None)
        assert 0 <= encode(entry, N) < (1 << DIRECTORY_BITS)
