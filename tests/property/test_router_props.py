"""Property-based tests for the interconnect: on random connected
topologies with random traffic, every packet is delivered exactly once."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.interconnect import Packet, PacketType, Topology, build_routers
from repro.sim import Simulator, substream


def random_topology(seed: int, n: int) -> Topology:
    """A random connected graph respecting the 4-channel budget."""
    rng = substream(seed, "topo")
    topo = Topology()
    for node in range(n):
        topo.add_node(node)
    # spanning chain keeps it connected
    for node in range(n - 1):
        topo.add_link(node, node + 1)
    # random extra links where channel budget allows
    for _ in range(n):
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b or topo.graph.has_edge(a, b):
            continue
        if topo.graph.degree(a) >= 4 or topo.graph.degree(b) >= 4:
            continue
        topo.add_link(a, b)
    topo.validate()
    return topo


traffic = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9),
              st.sampled_from([PacketType.READ, PacketType.DATA_REPLY,
                               PacketType.INVAL_ACK])),
    min_size=1, max_size=60,
)


class TestDeliveryProperties:
    @settings(max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 1000), traffic)
    def test_every_packet_delivered_exactly_once(self, seed, flows):
        topo = random_topology(seed, 10)
        sim = Simulator()
        routers = build_routers(sim, topo, iq_capacity=256, oq_capacity=128)
        received = {n: [] for n in topo.nodes}
        for n in topo.nodes:
            routers[n].iq.set_default_disposition(
                lambda p, n=n: received[n].append(p) or True)
        expected = {n: 0 for n in topo.nodes}
        for src, dst, ptype in flows:
            pkt = Packet(ptype, src=src, dst=dst)
            assert routers[src].inject(pkt)
            expected[dst] += 1
        sim.run()
        for node in topo.nodes:
            assert len(received[node]) == expected[node]

    @settings(max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 500))
    def test_latency_lower_bounded_by_distance(self, seed):
        """No packet arrives faster than its minimal hop count allows."""
        topo = random_topology(seed, 8)
        sim = Simulator()
        routers = build_routers(sim, topo)
        arrivals = {}
        for n in topo.nodes:
            routers[n].iq.set_default_disposition(
                lambda p, n=n: arrivals.__setitem__((p.src, n), sim.now)
                or True)
        for dst in range(1, 8):
            routers[0].inject(Packet(PacketType.READ, src=0, dst=dst))
        sim.run()
        for (src, dst), t in arrivals.items():
            hops = topo.distance(src, dst)
            # per hop: >= 2ns fall-through + 4ns serialisation + 2ns wire
            assert t >= hops * 8000
