"""Property-based tests for the ISA encoder/decoder and ALU semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import FunctionalCpu, Instruction, Mnemonic, SharedMemory, decode, encode
from repro.isa.cpu import MASK64
from repro.isa.encoding import FORMATS, Format

regs = st.integers(min_value=0, max_value=31)
mem_disp = st.integers(min_value=-32768, max_value=32767)
br_disp = st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1)
literals = st.integers(min_value=0, max_value=255)
operate_mnems = st.sampled_from(
    [m for m in Mnemonic if FORMATS[m] == Format.OPERATE])
memory_mnems = st.sampled_from(
    [m for m in Mnemonic if FORMATS[m] == Format.MEMORY])
branch_mnems = st.sampled_from(
    [m for m in Mnemonic if FORMATS[m] == Format.BRANCH])


class TestEncodingRoundtrip:
    @given(memory_mnems, regs, regs, mem_disp)
    def test_memory_format(self, mnem, ra, rb, disp):
        instr = Instruction(mnem, ra=ra, rb=rb, disp=disp)
        assert decode(encode(instr)) == instr

    @given(branch_mnems, regs, br_disp)
    def test_branch_format(self, mnem, ra, disp):
        instr = Instruction(mnem, ra=ra, disp=disp)
        assert decode(encode(instr)) == instr

    @given(operate_mnems, regs, regs, regs)
    def test_operate_register_form(self, mnem, ra, rb, rc):
        instr = Instruction(mnem, ra=ra, rb=rb, rc=rc)
        assert decode(encode(instr)) == instr

    @given(operate_mnems, regs, literals, regs)
    def test_operate_literal_form(self, mnem, ra, lit, rc):
        instr = Instruction(mnem, ra=ra, literal=lit, rc=rc)
        assert decode(encode(instr)) == instr


values = st.integers(min_value=0, max_value=MASK64)


def run_op(mnem, a, b):
    cpu = FunctionalCpu([
        encode(Instruction(mnem, ra=1, rb=2, rc=3)),
        encode(Instruction(Mnemonic.HALT)),
    ], SharedMemory())
    cpu.state.regs[1] = a
    cpu.state.regs[2] = b
    cpu.run()
    return cpu.state.regs[3]


class TestAluSemantics:
    @given(values, values)
    def test_addq_mod_2_64(self, a, b):
        assert run_op(Mnemonic.ADDQ, a, b) == (a + b) & MASK64

    @given(values, values)
    def test_subq_mod_2_64(self, a, b):
        assert run_op(Mnemonic.SUBQ, a, b) == (a - b) & MASK64

    @given(values, values)
    def test_logic_ops(self, a, b):
        assert run_op(Mnemonic.AND, a, b) == a & b
        assert run_op(Mnemonic.BIS, a, b) == a | b
        assert run_op(Mnemonic.XOR, a, b) == a ^ b

    @given(values, st.integers(min_value=0, max_value=63))
    def test_shifts(self, a, sh):
        assert run_op(Mnemonic.SLL, a, sh) == (a << sh) & MASK64
        assert run_op(Mnemonic.SRL, a, sh) == a >> sh

    @given(values, values)
    def test_compare_flags_are_boolean(self, a, b):
        for mnem in (Mnemonic.CMPEQ, Mnemonic.CMPLT, Mnemonic.CMPLE):
            assert run_op(mnem, a, b) in (0, 1)

    @given(values)
    def test_cmpeq_reflexive(self, a):
        assert run_op(Mnemonic.CMPEQ, a, a) == 1
        assert run_op(Mnemonic.CMPLE, a, a) == 1
        assert run_op(Mnemonic.CMPLT, a, a) == 0
