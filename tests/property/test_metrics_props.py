"""Property tests for the observability layer.

Two invariants the metrics consumers lean on:

* a transaction probe's hop decomposition is an exact *partition* of its
  end-to-end latency — every picosecond is assigned to exactly one hop
  label, whatever the stamp sequence looks like;
* :func:`validate_metrics` accepts a conforming document and rejects
  every single-field corruption of one (so schema drift cannot land
  silently).
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import RequestType
from repro.core.probe import LATENCY_EDGES_NS, TxnProbe
from repro.harness.metrics import SCHEMA, validate_metrics

# ---------------------------------------------------------------------------
# hop decomposition partitions latency

HOP_LABELS = ("l1_miss", "l2_lookup", "pkt_send", "dir_lookup", "fwd",
              "dram", "pkt_reply", "fill")

stamp_seqs = st.lists(
    st.tuples(st.sampled_from(HOP_LABELS), st.integers(0, 50_000)),
    min_size=1, max_size=24)


@settings(max_examples=200)
@given(t0=st.integers(0, 10_000), deltas=stamp_seqs)
def test_hop_decomposition_partitions_latency(t0, deltas):
    probe = TxnProbe(None, txn_id=1, cpu_id=0, node=0,
                     reqtype=RequestType.READ, now_ps=t0)
    t = t0
    for label, dt in deltas:
        t += dt
        probe.stamp(label, t)
    hops = probe.hop_decomposition()
    # exact partition: hop times sum to the end-to-end latency...
    assert sum(hops.values()) == probe.latency_ps() == t - t0
    # ...over exactly the labels that appear, each non-negative
    assert set(hops) == {label for label, _dt in deltas}
    assert all(dt >= 0 for dt in hops.values())


@settings(max_examples=60)
@given(t0=st.integers(0, 1000), deltas=stamp_seqs)
def test_hop_decomposition_merges_repeated_labels(t0, deltas):
    probe = TxnProbe(None, txn_id=1, cpu_id=0, node=0,
                     reqtype=RequestType.READ, now_ps=t0)
    expected = {}
    t = t0
    for label, dt in deltas:
        t += dt
        probe.stamp(label, t)
        expected[label] = expected.get(label, 0) + dt
    assert probe.hop_decomposition() == expected


# ---------------------------------------------------------------------------
# validate_metrics: conforming documents pass, corrupted ones fail


def minimal_doc():
    """The smallest document exercising every validated block."""
    edges = list(LATENCY_EDGES_NS)
    return {
        "schema": SCHEMA,
        "run": {
            "config": "P8", "cpus": 8, "nodes": 1, "workload": "oltp",
            "units": 20, "time_per_unit_ns": 1.0, "throughput": 1.0,
            "busy_frac": 0.5, "l2_frac": 0.3, "mem_frac": 0.2,
            "miss_hit_frac": 0.6, "miss_fwd_frac": 0.2,
            "miss_mem_frac": 0.2, "finish_ps": 1000,
            "probe_rate": 64, "sample_interval_ps": 0,
        },
        "probes": {
            "rate": 64, "attached": 3, "completed": 2,
            "classes": {
                "l2_hit": {
                    "count": 2, "mean_ns": 40.0, "p50_ns": 40.0,
                    "histogram": {"edges_ns": edges,
                                  "bins": [2] + [0] * len(edges)},
                    "hops": {},
                },
            },
            "by_source": {},
        },
        "timeseries": {
            "interval_ps": 100, "count": 2,
            "intervals": [
                {"index": 0, "t0_ps": 0, "t1_ps": 100, "reset": False,
                 "partial": False, "deltas": {}},
                {"index": 1, "t0_ps": 100, "t1_ps": 200, "reset": False,
                 "partial": False, "deltas": {}},
            ],
        },
        "counters": [],
    }


def test_minimal_doc_conforms():
    assert validate_metrics(minimal_doc()) == []


def _del(*path):
    def corrupt(doc):
        target = doc
        for key in path[:-1]:
            target = target[key]
        del target[path[-1]]
    corrupt.__name__ = "del_" + "_".join(str(p) for p in path)
    return corrupt


def _set(value, *path):
    def corrupt(doc):
        target = doc
        for key in path[:-1]:
            target = target[key]
        target[path[-1]] = value
    corrupt.__name__ = "set_" + "_".join(str(p) for p in path)
    return corrupt


#: every corruption flips exactly one field of a conforming document
CORRUPTIONS = [
    _set("repro-metrics/0", "schema"),
    _del("run"),
    _del("probes"),
    _del("timeseries"),
    _del("counters"),
    _set(3, "run"),
    _set({}, "counters"),
    _del("run", "config"),
    _del("run", "busy_frac"),
    _del("run", "finish_ps"),
    _del("run", "probe_rate"),
    _del("probes", "rate"),
    _del("probes", "classes"),
    _del("probes", "classes", "l2_hit", "count"),
    _del("probes", "classes", "l2_hit", "histogram"),
    _del("probes", "classes", "l2_hit", "hops"),
    # histogram mass no longer equals the class count
    _set([1] + [0] * len(LATENCY_EDGES_NS),
         "probes", "classes", "l2_hit", "histogram", "bins"),
    # bins/edges length contract broken
    _set([0, 1], "probes", "classes", "l2_hit", "histogram", "bins"),
    _del("timeseries", "interval_ps"),
    _del("timeseries", "intervals", 1, "deltas"),
    _del("timeseries", "intervals", 0, "partial"),
    # interval running backwards (and zero-width: both non-positive)
    _set(40, "timeseries", "intervals", 1, "t1_ps"),
    _set(100, "timeseries", "intervals", 1, "t1_ps"),
]


@settings(max_examples=len(CORRUPTIONS) * 3)
@given(st.sampled_from(CORRUPTIONS))
def test_validate_metrics_rejects_single_field_corruption(corrupt):
    doc = minimal_doc()
    corrupt(doc)
    problems = validate_metrics(doc)
    assert problems, f"{corrupt.__name__} slipped past validate_metrics"


@settings(max_examples=40)
@given(st.lists(st.sampled_from(CORRUPTIONS), min_size=1, max_size=4,
                unique_by=lambda c: c.__name__))
def test_validate_metrics_rejects_stacked_corruptions(corruptions):
    doc = minimal_doc()
    pristine = copy.deepcopy(doc)
    for corrupt in corruptions:
        try:
            corrupt(doc)
        except (KeyError, IndexError, TypeError):
            pass  # an earlier corruption already removed the parent
    if doc == pristine:  # every corruption hit a removed parent
        return
    assert validate_metrics(doc)


# ---------------------------------------------------------------------------
# the real document honours both invariants


def test_real_metrics_doc_conforms_and_partitions():
    from repro.harness.experiments import MigratoryFactory
    from repro.harness.runner import run_workload
    from repro.workloads import MicroParams

    # P2, not P1: migratory needs a second CPU to ping-pong against
    # before the measured phase sees any L1 misses to probe
    result = run_workload(
        "P2", MigratoryFactory(MicroParams(iterations=200)),
        units_attr="iterations", probe_rate=8)
    doc = result.extras["metrics"]
    assert validate_metrics(doc) == []
    samples = doc["probes"]["samples"]
    assert samples, "probe_rate=8 over 200 iterations must sample misses"
    for sample in samples:
        stamps = sample["stamps"]
        hop_sum_ps = stamps[-1][1] - stamps[0][1]
        assert abs(hop_sum_ps / 1000.0 - sample["latency_ns"]) < 1e-6
