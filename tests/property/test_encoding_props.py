"""Property-based tests for the DC-balanced channel code (§2.6.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import (
    WORD_WEIGHT,
    decode,
    encode,
    is_balanced,
    popcount,
)

payloads = st.integers(min_value=0, max_value=(1 << 18) - 1)
bits = st.integers(min_value=0, max_value=1)


class TestEncodingProperties:
    @given(payloads, bits)
    def test_roundtrip(self, value, rnd):
        assert decode(encode(value, rnd)) == (value, rnd)

    @given(payloads, bits)
    def test_always_dc_balanced(self, value, rnd):
        word = encode(value, rnd)
        assert popcount(word) == WORD_WEIGHT
        assert is_balanced(word)

    @given(payloads)
    def test_injective_over_payloads(self, value):
        # encode is injective: a different payload nearby never collides
        other = (value + 1) % (1 << 18)
        assert encode(value, 0) != encode(other, 0)

    @given(payloads)
    def test_random_bit_inverts_all_wires(self, value):
        assert encode(value, 1) == encode(value, 0) ^ ((1 << 22) - 1)

    @given(payloads, bits, st.integers(min_value=0, max_value=21))
    def test_single_wire_error_always_detected(self, value, rnd, wire):
        """Flipping any single wire breaks DC balance and is detected."""
        corrupted = encode(value, rnd) ^ (1 << wire)
        assert not is_balanced(corrupted)

    @given(payloads, bits, st.integers(min_value=0, max_value=21),
           st.integers(min_value=0, max_value=21))
    def test_double_error_never_silently_wrong_payload(self, value, rnd,
                                                       w1, w2):
        """Two wire flips either keep balance (and may alias) or are
        detected; aliasing must never decode to a *different random bit
        with the same payload-complement confusion* — i.e., decode either
        raises or yields a legal (payload, bit) pair."""
        word = encode(value, rnd) ^ (1 << w1) ^ (1 << w2)
        try:
            payload, bit = decode(word)
        except Exception:
            return
        assert 0 <= payload < (1 << 18)
        assert bit in (0, 1)
