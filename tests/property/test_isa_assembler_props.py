"""Property-based tests for the two-pass assembler (satellite of the
ISA kernel suite): text round-trips, label displacement arithmetic, and
error reporting with accurate line numbers."""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import AssemblyError, Mnemonic, assemble, decode
from repro.isa.encoding import FORMATS, Format

regs = st.integers(min_value=0, max_value=31)
mem_disp = st.integers(min_value=-32768, max_value=32767)
literals = st.integers(min_value=0, max_value=255)
operate_mnems = st.sampled_from(
    [m for m in Mnemonic if FORMATS[m] == Format.OPERATE])
branch_mnems = st.sampled_from(
    [m for m in Mnemonic
     if FORMATS[m] == Format.BRANCH and m != Mnemonic.BR])
# padding blocks that cost exactly one instruction word each
padding = st.sampled_from(["nop", "addq r1, r2, r3", "mb",
                           "ldq r4, 16(r5)"])


class TestSourceRoundtrip:
    @given(operate_mnems, regs, regs, regs)
    def test_operate_register_text(self, mnem, ra, rb, rc):
        words = assemble(f"{mnem.value} r{ra}, r{rb}, r{rc}")
        instr = decode(words[0])
        assert (instr.mnem, instr.ra, instr.rb, instr.rc) == \
            (mnem, ra, rb, rc)
        assert instr.literal is None

    @given(operate_mnems, regs, literals, regs)
    def test_operate_literal_text(self, mnem, ra, lit, rc):
        words = assemble(f"{mnem.value} r{ra}, #{lit}, r{rc}")
        instr = decode(words[0])
        assert (instr.mnem, instr.ra, instr.literal, instr.rc) == \
            (mnem, ra, lit, rc)

    @given(st.sampled_from([Mnemonic.LDQ, Mnemonic.STQ, Mnemonic.LDQ_L,
                            Mnemonic.STQ_C, Mnemonic.LDA]),
           regs, regs, mem_disp)
    def test_memory_text(self, mnem, ra, rb, disp):
        words = assemble(f"{mnem.value} r{ra}, {disp}(r{rb})")
        instr = decode(words[0])
        assert (instr.mnem, instr.ra, instr.rb, instr.disp) == \
            (mnem, ra, rb, disp)

    @given(regs, mem_disp)
    def test_wh64_single_operand_text(self, rb, disp):
        instr = decode(assemble(f"wh64 {disp}(r{rb})")[0])
        assert (instr.mnem, instr.rb, instr.disp) == \
            (Mnemonic.WH64, rb, disp)

    @given(st.lists(padding, max_size=6))
    def test_comments_and_blanks_are_free(self, pads):
        source = "\n".join(["; leading comment", ""]
                           + [f"  {p}  ; trailing" for p in pads])
        assert len(assemble(source)) == len(pads)


class TestLabelDisplacement:
    @given(branch_mnems, regs, st.lists(padding, max_size=10))
    def test_forward_branch(self, mnem, ra, pads):
        """disp is relative to the *following* instruction, so skipping
        k padding instructions encodes disp == k."""
        source = "\n".join([f"{mnem.value} r{ra}, target"] + list(pads)
                           + ["target:", "halt"])
        instr = decode(assemble(source)[0])
        assert instr.mnem == mnem and instr.disp == len(pads)

    @given(branch_mnems, regs, st.lists(padding, max_size=10))
    def test_backward_branch(self, mnem, ra, pads):
        """Branching back over itself plus k pads encodes -(k+1)."""
        source = "\n".join(["target:"] + list(pads)
                           + [f"{mnem.value} r{ra}, target", "halt"])
        words = assemble(source)
        instr = decode(words[len(pads)])
        assert instr.mnem == mnem and instr.disp == -(len(pads) + 1)

    @given(st.lists(padding, max_size=8))
    def test_branch_to_next_instruction_is_zero(self, pads):
        source = "\n".join(list(pads) + ["br next", "next:", "halt"])
        instr = decode(assemble(source)[len(pads)])
        assert instr.mnem == Mnemonic.BR and instr.disp == 0

    @given(st.lists(padding, min_size=1, max_size=8))
    def test_functional_effect_of_forward_branch(self, pads):
        """The skipped padding must really be skipped when executed."""
        from repro.isa import FunctionalCpu, SharedMemory

        source = "\n".join(["br done"]
                           + ["addq r1, #1, r1" for _ in pads]
                           + ["done:", "halt"])
        cpu = FunctionalCpu(assemble(source), SharedMemory())
        state = cpu.run()
        assert state.regs[1] == 0
        assert state.instructions_retired == 2


class TestErrorLineNumbers:
    @given(st.lists(padding, max_size=6),
           st.sampled_from(["frobnicate r1, r2, r3",
                            "addq r1, r2",
                            "addq r1, #256, r3",
                            "ldq r1, 70000(r2)",
                            "br nowhere",
                            "addq r32, r1, r2"]))
    def test_lineno_points_at_bad_line(self, pads, bad):
        good = list(pads) + ["halt"]
        for position in range(len(good) + 1):
            source = "\n".join(good[:position] + [bad] + good[position:])
            with pytest.raises(AssemblyError) as exc_info:
                assemble(source)
            assert exc_info.value.lineno == position + 1
            assert str(position + 1) in str(exc_info.value)

    def test_duplicate_label_reports_second_site(self):
        with pytest.raises(AssemblyError) as exc_info:
            assemble("dup:\nnop\ndup:\nhalt")
        assert exc_info.value.lineno == 3
