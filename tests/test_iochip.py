"""Unit tests for the I/O node (§2, Figure 2)."""

import pytest

from repro.core import AccessKind, CoherenceChecker, PiranhaSystem, preset
from repro.core.iochip import io_node_config
from repro.core.messages import MemRequest, RequestType


@pytest.fixture
def system():
    return PiranhaSystem(preset("P2"), num_nodes=1, io_nodes=1,
                         checker=CoherenceChecker())


class TestIoConfig:
    def test_stripped_down_chip(self):
        cfg = io_node_config(preset("P8"))
        assert cfg.cpus == 1
        assert cfg.l2.banks == 1
        assert cfg.is_io_node

    def test_l2_is_one_banks_worth(self):
        cfg = io_node_config(preset("P8"))
        assert cfg.l2.size_bytes == 1024 * 1024 // 8


class TestTopologyMembership:
    def test_io_node_is_full_interconnect_member(self, system):
        assert system.topology.kind(1) == "io"
        assert 1 in system.topology.nodes
        assert system.num_nodes == 2  # proc + io

    def test_io_memory_participates_in_coherence(self, system):
        """§2: 'the memory on the I/O chip fully participates in the global
        cache coherence scheme'."""
        # an address homed at the I/O node (chunk 1 of the 8 KB interleave)
        io_homed = 0x2000
        assert system.address_map.home_of(io_homed) == 1
        out = {}
        req = MemRequest(cpu_id=0, kind=AccessKind.LOAD, addr=io_homed,
                         is_instr=False,
                         done=lambda l, s: out.update(latency=l, source=s),
                         node=0)
        req.issue_time = 0
        system.nodes[0].issue_miss(req, RequestType.READ)
        system.sim.run()
        assert out["source"].name == "REMOTE_MEM"


class TestDriverCpu:
    def test_io_cpu_indistinguishable(self, system):
        """The CPU on the I/O chip runs workloads like any other."""
        from repro.workloads.base import WorkloadThread

        io_cpu = system.io[0].cpu
        io_cpu.attach(WorkloadThread(iter(
            [(100, AccessKind.LOAD, 0x2000, True)])))
        io_cpu.start()
        system.sim.run()
        assert io_cpu.finished
        assert io_cpu.misses == 1


class TestDma:
    def test_dma_read_through_coherence(self, system):
        done = []
        t = system.io[0].pci.dma(0x0000, lines=8, is_write=False,
                                 on_done=done.append)
        system.sim.run()
        assert done and t.done_lines == 8
        assert system.io[0].pci.c_dma_reads.value == 8

    def test_dma_write_uses_wh64(self, system):
        t = system.io[0].pci.dma(0x0000, lines=4, is_write=True)
        system.sim.run()
        assert t.done_lines == 4
        assert system.io[0].pci.c_dma_writes.value == 4

    def test_dma_fetches_dirty_cpu_data(self, system):
        """Device reads see the latest CPU writes (coherent I/O)."""
        out = {}
        req = MemRequest(cpu_id=0, kind=AccessKind.STORE, addr=0x0000,
                         is_instr=False,
                         done=lambda l, s: out.update(s=s), node=0)
        req.issue_time = 0
        system.nodes[0].issue_miss(req, RequestType.READ_EXCLUSIVE)
        system.sim.run()
        system.io[0].pci.dma(0x0000, lines=1, is_write=False)
        system.sim.run()
        pci_line = system.io[0].pci.dl1.peek(0x0000)
        assert pci_line is not None
        assert pci_line.version == 1  # saw the store
        system.checker.verify_quiesced()

    def test_dma_completion_interrupt(self, system):
        system.io[0].pci.dma(0x0000, lines=1, is_write=False,
                             interrupt_vector=7)
        system.sim.run()
        sc = system.io[0].chip.syscontrol
        assert sc.c_interrupts.value == 1

    def test_dma_needs_positive_length(self, system):
        with pytest.raises(ValueError):
            system.io[0].pci.dma(0x0000, lines=0, is_write=False)

    def test_pci_serialises_lines(self, system):
        t = system.io[0].pci.dma(0x0000, lines=8, is_write=False)
        system.sim.run()
        # 8 lines over a ~533 MB/s PCI: at least 8 * 120 ns of wire time
        assert (t.end_ps - t.start_ps) >= 8 * system.io[0].pci.line_transfer_ps
