"""Unit tests for the first-level caches (§2.1)."""

import pytest

from repro.core import MESI, AccessKind, L1Params
from repro.core.l1 import L1Cache


def make_l1(size=64 * 1024, assoc=2, cpu=0, instr=False):
    return L1Cache(L1Params(size_bytes=size, assoc=assoc), cpu, instr)


class TestGeometry:
    def test_64kb_two_way_has_512_sets(self):
        assert make_l1().num_sets == 512

    def test_direct_mapped(self):
        l1 = make_l1(size=32 * 1024, assoc=1)
        assert l1.num_sets == 512


class TestLookup:
    def test_cold_miss(self):
        l1 = make_l1()
        result = l1.lookup(0x1000, AccessKind.LOAD)
        assert not result.hit
        assert result.state == MESI.INVALID

    def test_hit_after_fill(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.SHARED, owner=False)
        assert l1.lookup(0x1000, AccessKind.LOAD).hit

    def test_store_to_shared_needs_upgrade(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.SHARED, owner=False)
        result = l1.lookup(0x1000, AccessKind.STORE)
        assert not result.hit
        assert result.needs_upgrade

    def test_store_to_exclusive_upgrades_silently(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.EXCLUSIVE, owner=True)
        result = l1.lookup(0x1000, AccessKind.STORE)
        assert result.hit
        assert l1.peek(0x1000).state == MESI.MODIFIED
        assert l1.peek(0x1000).dirty

    def test_store_bumps_version(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.MODIFIED, owner=True, version=3, dirty=True)
        l1.lookup(0x1000, AccessKind.STORE)
        assert l1.peek(0x1000).version == 4

    def test_wh64_behaves_as_write(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.EXCLUSIVE, owner=True)
        assert l1.lookup(0x1000, AccessKind.WH64).hit
        assert l1.peek(0x1000).state == MESI.MODIFIED


class TestReplacement:
    def test_lru_within_set(self):
        l1 = make_l1()
        set_stride = l1.num_sets * 64
        a, b, c = 0x0, set_stride, 2 * set_stride  # same set
        l1.fill(a, MESI.EXCLUSIVE, owner=True)
        l1.fill(b, MESI.EXCLUSIVE, owner=True)
        l1.lookup(a, AccessKind.LOAD)            # refresh a
        ev = l1.fill(c, MESI.EXCLUSIVE, owner=True)
        assert ev is not None
        assert ev.addr == b                       # b was least recently used

    def test_eviction_carries_owner_and_dirty(self):
        l1 = make_l1(assoc=1)
        stride = l1.num_sets * 64
        l1.fill(0x0, MESI.MODIFIED, owner=True, version=7, dirty=True)
        ev = l1.fill(stride, MESI.SHARED, owner=False)
        assert ev.owner and ev.dirty and ev.version == 7

    def test_choose_victim_predicts(self):
        l1 = make_l1(assoc=1)
        stride = l1.num_sets * 64
        l1.fill(0x0, MESI.SHARED, owner=False)
        assert l1.choose_victim(stride) == 0x0
        assert l1.choose_victim(0x0) is None  # already resident

    def test_refill_same_line_no_eviction(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.SHARED, owner=False, version=1)
        ev = l1.fill(0x1000, MESI.MODIFIED, owner=True, version=2)
        assert ev is None
        assert l1.peek(0x1000).state == MESI.MODIFIED
        assert l1.peek(0x1000).version == 2


class TestCoherenceOps:
    def test_invalidate(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.MODIFIED, owner=True, dirty=True)
        line = l1.invalidate(0x1000)
        assert line is not None and line.dirty
        assert l1.peek(0x1000) is None

    def test_invalidate_missing_line(self):
        assert make_l1().invalidate(0x1000) is None

    def test_downgrade(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.MODIFIED, owner=True, dirty=True)
        line = l1.downgrade(0x1000)
        assert line.state == MESI.SHARED
        assert line.dirty  # dirtiness preserved for the caller to route

    def test_set_owner(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.SHARED, owner=True)
        l1.set_owner(0x1000, False)
        assert not l1.peek(0x1000).owner

    def test_cannot_fill_invalid(self):
        with pytest.raises(ValueError):
            make_l1().fill(0x1000, MESI.INVALID, owner=False)


class TestStats:
    def test_hit_rate(self):
        l1 = make_l1()
        l1.fill(0x1000, MESI.SHARED, owner=False)
        l1.lookup(0x1000, AccessKind.LOAD)
        l1.lookup(0x2000, AccessKind.LOAD)
        assert l1.hit_rate == 0.5

    def test_resident_lines(self):
        l1 = make_l1()
        for i in range(10):
            l1.fill(i * 64, MESI.SHARED, owner=False)
        assert l1.resident_lines() == 10
