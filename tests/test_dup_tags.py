"""Unit tests for the duplicate L1 tags and ownership (§2.3)."""

import pytest

from repro.core import MESI, PIRANHA_P8
from repro.core.dup_tags import L2_OWNER, DuplicateTags, duplicate_tag_overhead


@pytest.fixture
def dup():
    return DuplicateTags(bank=0)


LINE = 0x1000


class TestSharerTracking:
    def test_add_and_query(self, dup):
        dup.add_sharer(LINE, 0, MESI.SHARED, make_owner=True)
        dup.add_sharer(LINE, 2, MESI.SHARED, make_owner=False)
        assert dup.sharers(LINE) == {0, 2}
        assert dup.owner(LINE) == 0

    def test_unknown_line(self, dup):
        assert dup.sharers(LINE) == set()
        assert dup.owner(LINE) is None

    def test_remove_sharer(self, dup):
        dup.add_sharer(LINE, 0, MESI.SHARED, make_owner=True)
        dup.add_sharer(LINE, 1, MESI.SHARED, make_owner=False)
        dup.remove_sharer(LINE, 1)
        assert dup.sharers(LINE) == {0}

    def test_entry_garbage_collected(self, dup):
        dup.add_sharer(LINE, 0, MESI.SHARED, make_owner=True)
        dup.remove_sharer(LINE, 0)
        assert dup.entry(LINE) is None


class TestOwnership:
    def test_owner_moves_to_last_requester(self, dup):
        dup.add_sharer(LINE, 0, MESI.SHARED, make_owner=True)
        dup.add_sharer(LINE, 1, MESI.SHARED, make_owner=True)
        assert dup.owner(LINE) == 1

    def test_l2_owner(self, dup):
        dup.add_sharer(LINE, 0, MESI.SHARED, make_owner=False)
        dup.set_l2_owner(LINE)
        assert dup.owner(LINE) == L2_OWNER
        assert dup.l1_owner(LINE) is None

    def test_l1_owner_excludes_l2(self, dup):
        dup.add_sharer(LINE, 3, MESI.EXCLUSIVE, make_owner=True)
        assert dup.l1_owner(LINE) == 3

    def test_owner_cleared_on_removal(self, dup):
        dup.add_sharer(LINE, 0, MESI.SHARED, make_owner=True)
        dup.add_sharer(LINE, 1, MESI.SHARED, make_owner=False)
        # make 0 the owner again, then remove it
        e = dup.entry(LINE)
        e.owner = 0
        dup.remove_sharer(LINE, 0)
        assert dup.owner(LINE) is None
        assert dup.promote_any_owner(LINE) == 1

    def test_is_exclusive(self, dup):
        dup.add_sharer(LINE, 0, MESI.MODIFIED, make_owner=True)
        assert dup.entry(LINE).is_exclusive()
        dup.add_sharer(LINE, 1, MESI.SHARED, make_owner=False)
        assert not dup.entry(LINE).is_exclusive()


class TestStateMirror:
    def test_set_state(self, dup):
        dup.add_sharer(LINE, 0, MESI.EXCLUSIVE, make_owner=True)
        dup.set_state(LINE, 0, MESI.SHARED)
        assert dup.entry(LINE).states[0] == MESI.SHARED

    def test_drop_line(self, dup):
        dup.add_sharer(LINE, 0, MESI.SHARED, make_owner=True)
        dup.drop_line(LINE)
        assert dup.entry(LINE) is None


class TestOverheadClaim:
    def test_duplicate_tags_under_one_thirty_second(self):
        """§2.3: total duplicate L1 tag/state overhead is less than 1/32 of
        the total on-chip memory."""
        assert duplicate_tag_overhead(PIRANHA_P8) < 1 / 32
