"""Unit tests for the experiment harness and reporting."""

import pytest

from repro.harness import (
    breakdown_bar,
    format_table,
    paper_vs_measured,
    series,
    table1_parameters,
)
from repro.harness.runner import RunResult


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in out

    def test_paper_vs_measured(self):
        out = paper_vs_measured("X", [("speedup", 2.9, 3.03)])
        assert "paper" in out and "measured" in out
        assert "2.90" in out and "3.03" in out

    def test_paper_vs_measured_with_note(self):
        out = paper_vs_measured("X", [("m", 1, 2, "close")])
        assert "note" in out and "close" in out

    def test_breakdown_bar_normalises(self):
        out = breakdown_bar("P8", 0.5, 0.3, 0.2, width=10)
        bar = out[out.index("[") + 1:out.index("]")]
        assert bar.count("#") == 5
        assert bar.count("=") == 3
        assert bar.count(".") == 2

    def test_series(self):
        out = series("speedup", {1: 1.0, 8: 6.9})
        assert "1:1.00" in out and "8:6.90" in out


class TestTable1Harness:
    def test_columns_match_paper(self):
        t = table1_parameters()
        assert t["P8"]["Processor Speed"] == "500 MHz"
        assert t["P8F"]["Processor Speed"] == "1.25 GHz"
        assert t["OOO"]["Issue Width"] == 4


class TestRunResult:
    def test_normalized_breakdown(self):
        r = RunResult(
            config="P8", cpus=8, nodes=1, workload="oltp", units=10,
            time_per_unit_ns=1000.0, throughput=1e6,
            busy_frac=0.5, l2_frac=0.3, mem_frac=0.2,
            miss_hit_frac=0.6, miss_fwd_frac=0.3, miss_mem_frac=0.1,
        )
        assert r.normalized_breakdown == (0.5, 0.3, 0.2)
