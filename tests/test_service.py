"""Simulation-service tests: store, queue, worker, server.

Covers the PR's acceptance criteria:

* the shared locked write path (``locked_exclusive_write``) is
  first-writer-wins across the result cache, the warm checkpoint store
  and the artifact store, and ``repro cache --clear`` leaves the
  sibling stores alone,
* telemetry readers tolerate a torn (partially-written) final JSONL
  line — including one split mid-multi-byte-UTF-8 — and the writer
  flushes after ``run_end``,
* the job queue orders by ``(-priority, seq)``, a suspended job keeps
  its original seq, and crash recovery replays the on-disk manifests,
* a preempted-then-resumed run produces a byte-identical metrics
  document to an uninterrupted run (satellite 3 — the core determinism
  gate of the preemption design),
* the server end-to-end: concurrent duplicate submissions deduplicate
  to one simulation, a mid-run subscriber streams live telemetry, a
  higher-priority arrival preempts and the victim resumes, and a
  restarted server recovers its queue.
"""

import json
import os
import threading
import time

import pytest

from repro.harness.cache import DiskCache, locked_exclusive_write
from repro.observe.telemetry import (TelemetryStream, follow_records,
                                     parse_line, read_records)
from repro.service import queue as jobq
from repro.service.queue import (JobQueue, JobRecord, dedupe_key_for,
                                 normalize_spec)
from repro.service.store import ArtifactStore
from repro.service.worker import PreemptGuard, execute_job


@pytest.fixture
def service_env(tmp_path, monkeypatch):
    """An isolated store root (cache + checkpoints + artifacts + jobs)."""
    root = str(tmp_path / "store")
    monkeypatch.setenv("REPRO_CACHE_DIR", root)
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return root


# -- locked writes (satellite 2) -----------------------------------------

class TestLockedWrites:
    def test_first_writer_wins(self, tmp_path):
        target = str(tmp_path / "entry.json")
        assert locked_exclusive_write(target, b"first") is True
        assert locked_exclusive_write(target, b"second") is False
        with open(target, "rb") as fh:
            assert fh.read() == b"first"

    def test_concurrent_writers_single_winner(self, tmp_path):
        target = str(tmp_path / "entry.json")
        wins = []
        barrier = threading.Barrier(8)

        def attempt(i):
            barrier.wait()
            if locked_exclusive_write(target, b"%d" % i):
                wins.append(i)

        threads = [threading.Thread(target=attempt, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        with open(target, "rb") as fh:
            assert fh.read() == b"%d" % wins[0]

    @staticmethod
    def _result(units=10):
        from repro.harness.runner import RunResult

        return RunResult(config="P2", cpus=2, nodes=1, workload="t",
                         units=units, time_per_unit_ns=1.0,
                         throughput=1.0, busy_frac=0.5, l2_frac=0.25,
                         mem_frac=0.25, miss_hit_frac=0.5,
                         miss_fwd_frac=0.25, miss_mem_frac=0.25)

    def test_disk_cache_put_reports_dedupe(self, service_env):
        cache = DiskCache(service_env)
        assert cache.put("k" * 64, self._result(10)) is True
        assert cache.put("k" * 64, self._result(99)) is False
        assert cache.get("k" * 64).units == 10  # first writer won

    def test_cache_clear_spares_sibling_stores(self, service_env):
        cache = DiskCache(service_env)
        cache.put("a" * 64, self._result())
        store = ArtifactStore(service_env)
        assert store.put_artifact("b" * 64, {"kind": "run"}) is True
        os.makedirs(store.jobs_dir(), exist_ok=True)
        manifest = os.path.join(store.jobs_dir(), "j0", "job.json")
        os.makedirs(os.path.dirname(manifest))
        with open(manifest, "w") as fh:
            json.dump({}, fh)

        removed = cache.clear()
        assert removed == 1  # only the result entry
        assert store.get_artifact("b" * 64) == {"kind": "run"}
        assert os.path.exists(manifest)

    def test_warm_store_put_is_exclusive(self, service_env):
        from repro.checkpoint import build_manifest
        from repro.checkpoint.store import WarmStore

        store = WarmStore(os.path.join(service_env, "checkpoints"))
        manifest = build_manifest(b"payload", fingerprint="f",
                                  config_digest="c", workload="w",
                                  nodes=1, sim_now=0, extra={})
        key = "c" * 64
        assert store.put(key, manifest, b"payload") is True
        assert store.put(key, manifest, b"payload") is False


# -- telemetry torn lines (satellite 1) ----------------------------------

class TestTornTelemetry:
    def test_parse_line_rejects_partial_json(self):
        assert parse_line(b'{"kind": "interval", "throughput"') is None
        assert parse_line(b"") is None
        assert parse_line(b"   \n") is None
        assert parse_line(b'{"kind": "run_end"}') == {"kind": "run_end"}

    def test_parse_line_rejects_torn_multibyte_utf8(self):
        line = json.dumps({"kind": "note", "msg": "café"},
                          ensure_ascii=False).encode()
        # cut inside the 2-byte UTF-8 sequence for é
        torn = line[:line.index(b"\xc3") + 1]
        assert parse_line(torn) is None
        assert parse_line(line) is not None

    def test_read_records_skips_torn_tail(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "wb") as fh:
            fh.write(json.dumps({"kind": "run_start"}).encode() + b"\n")
            fh.write(b'{"kind": "interval", "thr')  # torn, no newline
        records = read_records(path)
        assert [r["kind"] for r in records] == ["run_start"]

    def test_follow_buffers_partial_line_until_complete(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        full = json.dumps({"kind": "interval", "msg": "café"},
                          ensure_ascii=False).encode()
        with open(path, "wb") as fh:
            fh.write(json.dumps({"kind": "run_start"}).encode() + b"\n")
            fh.write(full[:len(full) - 3])  # torn mid-record

        seen = []

        def complete():
            time.sleep(0.3)
            with open(path, "ab") as fh:
                fh.write(full[len(full) - 3:] + b"\n")
                fh.write(json.dumps({"kind": "run_end"}).encode() + b"\n")

        finisher = threading.Thread(target=complete)
        finisher.start()
        try:
            for record in follow_records(path, timeout_s=10.0, poll_s=0.05):
                seen.append(record["kind"])
        finally:
            finisher.join()
        assert seen == ["run_start", "interval", "run_end"]
        assert any(r.get("msg") == "café"
                   for r in read_records(path))

    def test_stream_append_mode_continues_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryStream(path) as stream:
            stream.emit("run_start")
        with TelemetryStream(path, append=True) as stream:
            stream.emit("run_end")
        assert [r["kind"] for r in read_records(path)] == \
            ["run_start", "run_end"]


# -- artifact store -------------------------------------------------------

class TestArtifactStore:
    def test_roundtrip_and_counters(self, service_env):
        store = ArtifactStore(service_env)
        key = "d" * 64
        assert store.get_artifact(key) is None
        assert store.put_artifact(key, {"kind": "run", "n": 1}) is True
        assert store.put_artifact(key, {"kind": "run", "n": 2}) is False
        assert store.get_artifact(key) == {"kind": "run", "n": 1}
        assert store.artifact_misses == 1
        assert store.artifact_hits == 1
        info = store.info()
        assert info["artifacts"]["entries"] == 1


# -- queue ----------------------------------------------------------------

class TestJobQueue:
    def test_spec_normalisation_and_keys(self):
        a = normalize_spec({"workload": "oltp", "nodes": "2"})
        b = normalize_spec({"workload": "oltp", "nodes": 2,
                            "scale": 1, "kind": "run"})
        assert a == b
        assert dedupe_key_for({"workload": "oltp", "nodes": "2"}) == \
            dedupe_key_for({"workload": "oltp", "nodes": 2})
        # priority is scheduling policy, not identity; tags split
        assert dedupe_key_for({"workload": "oltp"}) != \
            dedupe_key_for({"workload": "oltp", "tag": "again"})

    def test_priority_then_fifo(self, tmp_path):
        queue = JobQueue(str(tmp_path / "jobs"))
        lo1 = queue.create({"workload": "oltp"}, priority=0)
        hi = queue.create({"workload": "dss"}, priority=5)
        lo2 = queue.create({"workload": "web"}, priority=0)
        for record in (lo1, hi, lo2):
            queue.push(record)
        order = [queue.pop_ready().job_id for _ in range(3)]
        assert order == [hi.job_id, lo1.job_id, lo2.job_id]

    def test_suspended_job_resumes_ahead_of_later_arrivals(self, tmp_path):
        queue = JobQueue(str(tmp_path / "jobs"))
        victim = queue.create({"workload": "oltp"}, priority=0)
        queue.push(victim)
        assert queue.pop_ready() is victim  # launched
        victim.state = jobq.SUSPENDED
        later = queue.create({"workload": "dss"}, priority=0)
        queue.push(later)
        queue.push(victim)  # requeued with its original seq
        assert queue.pop_ready() is victim

    def test_recover_replays_manifests(self, tmp_path):
        jobs_root = str(tmp_path / "jobs")
        queue = JobQueue(jobs_root)
        queued = queue.create({"workload": "oltp"}, priority=1)
        running = queue.create({"workload": "dss"})
        suspended = queue.create({"workload": "web"})
        done = queue.create({"workload": "oltp", "tag": "x"})
        running.state = jobq.RUNNING
        running.save()
        # a stale preemption request must not survive recovery
        with open(running.preempt_path, "w") as fh:
            fh.write("{}")
        suspended.state = jobq.RUNNING
        with open(suspended.suspend_path, "wb") as fh:
            fh.write(b"snapshot")
        suspended.save()
        done.state = jobq.DONE
        done.save()

        fresh = JobQueue(jobs_root)
        counts = fresh.recover()
        assert counts == {"queued": 1, "suspended": 1, "restarted": 1,
                          "kept": 1}
        assert fresh.records[running.job_id].state == jobq.QUEUED
        assert not os.path.exists(running.preempt_path)
        assert fresh.records[suspended.job_id].state == jobq.SUSPENDED
        assert fresh._next_seq == 4
        # priority-1 queued job comes out first
        assert fresh.pop_ready().job_id == queued.job_id


# -- worker: preemption determinism (satellite 3) ------------------------

def _run_job_inprocess(queue, spec, priority=0):
    """Drive one run job through execute_job until done; returns the
    (record, artifact, outcomes) triple."""
    record = queue.create(spec, priority)
    outcomes = []
    artifact = None
    for _ in range(10):
        with TelemetryStream(record.telemetry_path, append=True) as stream:
            outcome, artifact = execute_job(record, stream)
        outcomes.append(outcome)
        if outcome == "done":
            break
    return record, artifact, outcomes


class TestPreemptionDeterminism:
    def test_preempted_resume_is_byte_identical(self, tmp_path,
                                                monkeypatch):
        """The acceptance gate: suspend at a guard tick, resume in a
        fresh incarnation, and the metrics document (and every
        deterministic RunResult field) is byte-identical to an
        uninterrupted run with the same guard period."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")  # no cache shortcuts
        queue = JobQueue(str(tmp_path / "jobs"))
        spec = {"kind": "run", "workload": "migratory", "config": "P2",
                "scale": 1.0, "preempt_every_us": 2.0,
                "sample_interval_us": 4.0, "probe_rate": 16}

        # (a) preempted at the first guard tick, then resumed
        preempted = queue.create(spec, priority=0)
        with open(preempted.preempt_path, "w") as fh:
            json.dump({"by": "test"}, fh)
        with TelemetryStream(preempted.telemetry_path) as stream:
            outcome, artifact = execute_job(preempted, stream)
        assert outcome == "suspended"
        assert os.path.exists(preempted.suspend_path)
        assert not os.path.exists(preempted.preempt_path)  # consumed
        with TelemetryStream(preempted.telemetry_path,
                             append=True) as stream:
            outcome, art_resumed = execute_job(preempted, stream)
        assert outcome == "done"
        assert not os.path.exists(preempted.suspend_path)  # stale, gone

        # (b) the same spec, uninterrupted
        _, art_plain, outcomes = _run_job_inprocess(
            queue, dict(spec, tag="plain"))
        assert outcomes == ["done"]

        a = dict(art_resumed["result"])
        b = dict(art_plain["result"])
        a.pop("sim_wall_s")
        b.pop("sim_wall_s")
        assert json.dumps(a["extras"]["metrics"], sort_keys=True) == \
            json.dumps(b["extras"]["metrics"], sort_keys=True)
        assert json.dumps(a, sort_keys=True, default=str) == \
            json.dumps(b, sort_keys=True, default=str)

        kinds = [r["kind"] for r in read_records(preempted.telemetry_path)]
        assert "job_preempted" in kinds
        assert "job_resumed" in kinds
        assert kinds[-1] == "run_end"
        assert kinds.index("job_preempted") < kinds.index("job_resumed")

    def test_guard_tick_without_flag_keeps_running(self, tmp_path):
        class FakeSim:
            now = 0

            def schedule_every(self, every_ps, fn):
                self.every = every_ps

            def halt(self):
                raise AssertionError("must not halt without a request")

        class FakeSystem:
            sim = FakeSim()
            _running_cpus = 3

        guard = PreemptGuard(FakeSystem(), str(tmp_path / "absent.req"),
                             1000, sink=lambda payload, now: None)
        assert guard.tick() is True  # keep polling
        assert guard.suspended is False

    def test_guard_rejects_nonpositive_period(self, tmp_path):
        with pytest.raises(ValueError):
            PreemptGuard(object(), str(tmp_path / "f"), 0, sink=None)


# -- server end-to-end ----------------------------------------------------

@pytest.fixture
def server_root(tmp_path, monkeypatch):
    """Store root for subprocess-backed server tests.

    The server exports REPRO_CACHE_DIR to its workers itself; the
    monkeypatching only isolates the *test* process."""
    root = str(tmp_path / "store")
    monkeypatch.setenv("REPRO_CACHE_DIR", root)
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return root


def _client(srv):
    from repro.service.client import ServiceClient

    return ServiceClient(*srv.address)


class TestServer:
    def test_dedupe_and_live_streaming(self, server_root):
        """4 concurrent submissions with 2 duplicates → ≤2 simulations;
        a subscriber attached mid-run sees live records through run_end."""
        from repro.service.server import ServerThread

        spec_a = {"kind": "run", "workload": "migratory", "config": "P4",
                  "sample_interval_us": 2.0}
        spec_b = dict(spec_a, config="P2")
        with ServerThread(root=server_root, workers=2) as srv:
            client = _client(srv)
            docs = [client.submit(s)
                    for s in (spec_a, spec_b, spec_a, spec_b)]
            ids = [d["job_id"] for d in docs]
            # attach to the first job while it runs (replay + follow)
            kinds = [r["kind"] for r in client.attach(ids[0])]
            assert kinds[0] == "job_queued"
            assert kinds[-1] == "run_end"
            assert "interval" in kinds  # live sampler records streamed
            finals = [client.wait(i, timeout_s=120) for i in ids]
            assert all(f["state"] == "DONE" for f in finals)
            assert {finals[2]["dedup_of"], finals[3]["dedup_of"]} == \
                {ids[0], ids[1]}
            # duplicates return the leader's artifact
            assert client.result(ids[2]) == client.result(ids[0])
            stats = client.stats()
            assert stats["counters"]["dedupe_hits"] == 2
            assert stats["counters"]["completed"] == 4
            # resubmission after completion answers from the store
            instant = client.submit(spec_a)
            assert instant["state"] == "DONE"
            assert instant["dedup_of"] == "artifact"

    def test_priority_preemption_round_trip(self, server_root):
        from repro.service.server import ServerThread

        with ServerThread(root=server_root, workers=1) as srv:
            client = _client(srv)
            low = client.submit({"kind": "run", "workload": "oltp",
                                 "config": "P2", "scale": 0.25,
                                 "preempt_every_us": 5.0}, priority=0)
            deadline = time.monotonic() + 30
            while client.job(low["job_id"])["state"] != "RUNNING":
                assert time.monotonic() < deadline, "low job never started"
                time.sleep(0.05)
            high = client.submit({"kind": "run", "workload": "migratory",
                                  "config": "P4"}, priority=5)
            final_high = client.wait(high["job_id"], timeout_s=120)
            final_low = client.wait(low["job_id"], timeout_s=240)
            assert final_high["state"] == "DONE"
            assert final_low["state"] == "DONE"
            assert final_low["preemptions"] >= 1
            assert final_low["resumes"] >= 1
            kinds = [r["kind"]
                     for r in client.attach(low["job_id"])]
            assert "job_preempted" in kinds
            assert "job_resumed" in kinds
            assert kinds[-1] == "run_end"
            preempted = next(r for r in client.attach(low["job_id"])
                             if r["kind"] == "job_preempted")
            assert preempted["by"] == high["job_id"]

    def test_restart_recovers_queue(self, server_root):
        from repro.service.server import ServerThread

        spec = {"kind": "run", "workload": "migratory", "config": "P4"}
        with ServerThread(root=server_root, workers=0) as srv:
            client = _client(srv)
            job = client.submit(spec)
            assert client.job(job["job_id"])["state"] == "QUEUED"
        # manifest gone after clean shutdown
        assert not os.path.exists(
            ArtifactStore(server_root).server_manifest_path())
        with ServerThread(root=server_root, workers=1) as srv:
            client = _client(srv)
            assert srv.server.stats["recovered"] == 1
            final = client.wait(job["job_id"], timeout_s=120)
            assert final["state"] == "DONE"

    def test_cancel_queued_job(self, server_root):
        from repro.service.server import ServerThread

        with ServerThread(root=server_root, workers=0) as srv:
            client = _client(srv)
            job = client.submit({"kind": "run", "workload": "oltp"})
            assert client.cancel(job["job_id"])["state"] == "CANCELLED"
            # attach on a cancelled job still terminates (server wrote
            # the terminal run_end)
            kinds = [r["kind"] for r in client.attach(job["job_id"])]
            assert kinds[-1] == "run_end"
            assert client.cancel(job["job_id"])["cancelled"] is False

    def test_rejects_malformed_submission(self, server_root):
        from repro.service.client import ServiceError
        from repro.service.server import ServerThread

        with ServerThread(root=server_root, workers=0) as srv:
            client = _client(srv)
            with pytest.raises(ServiceError):
                client.submit({})
            with pytest.raises(ServiceError):
                client.job("j99999-nope")
