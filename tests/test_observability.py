"""Observability layer: transaction probes, interval sampler, metrics.

Covers the PR's acceptance criteria:

* probe hop decompositions partition the end-to-end latency exactly
  (hop-sum invariant) on every retained sample,
* probe-measured per-source latency means agree with the fully
  independent CPU stall accounting (exact-ish at probe rate 1 on
  in-order cores),
* the interval sampler produces a monotone, reset-flagged series with
  non-negative deltas and a final partial interval,
* the metrics document validates against its schema, is deterministic,
  and is identical through the serial, parallel (ProcessPool) and
  cached execution paths,
* cache keys fold the observability settings (a probed run never
  answers an unprobed lookup and vice versa).
"""

import dataclasses
import json

import pytest

from repro.core import PiranhaSystem, ProbeCollector, classify, preset
from repro.core.messages import ReplySource, RequestType
from repro.core.probe import TxnProbe
from repro.harness import Job, MigratoryFactory, clear_cache, run_jobs
from repro.harness.metrics import (
    counter_latency_ns,
    metrics_doc,
    timeseries_csv,
    validate_metrics,
)
from repro.harness.runner import run_configured, simulate
from repro.sim import IntervalSampler, Simulator
from repro.workloads import MicroParams, OltpParams, OltpWorkload

TINY_OLTP = OltpParams(transactions=6, warmup_transactions=8)
TINY_MICRO = MicroParams(iterations=120, warmup=30)


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    clear_cache()
    yield
    clear_cache()


def run_probed(rate=1, interval_ps=20_000_000, nodes=1, config="P2"):
    cfg = preset(config)
    system = PiranhaSystem(cfg, num_nodes=nodes)
    system.enable_probes(rate)
    if interval_ps:
        system.enable_sampler(interval_ps)
    system.attach_workload(OltpWorkload(TINY_OLTP, cpus_per_node=cfg.cpus,
                                        num_nodes=nodes))
    system.run_to_completion()
    return system


class TestTxnProbe:
    def _probe(self):
        collector = ProbeCollector(1)
        probe = collector.maybe_attach(7, 0, 0, RequestType.READ, 100)
        assert probe is not None
        return collector, probe

    def test_hop_decomposition_partitions_latency(self):
        _, probe = self._probe()
        probe.stamp("bank", 150)
        probe.stamp("l2_tag", 180)
        probe.stamp("mem_data", 400)
        probe.stamp("fill", 410)
        hops = probe.hop_decomposition()
        assert hops == {"bank": 50, "l2_tag": 30, "mem_data": 220,
                        "fill": 10}
        assert sum(hops.values()) == probe.latency_ps() == 310

    def test_repeated_labels_accumulate(self):
        _, probe = self._probe()
        probe.stamp("pkt_transit", 200)
        probe.stamp("pkt_transit", 350)
        assert probe.hop_decomposition() == {"pkt_transit": 250}

    def test_stamps_after_finish_dropped(self):
        _, probe = self._probe()
        probe.stamp("bank", 150)
        probe.finish(150, ReplySource.L2_HIT)
        probe.stamp("pkt_send", 500)
        probe.note("late", True)
        assert probe.stamps[-1] == ("bank", 150)
        assert "late" not in probe.notes

    def test_finish_appends_defensive_fill(self):
        _, probe = self._probe()
        probe.stamp("bank", 150)
        probe.finish(200, ReplySource.L2_HIT)
        assert probe.stamps[-1] == ("fill", 200)
        assert probe.latency_ps() == 100

    def test_double_finish_counts_once(self):
        collector, probe = self._probe()
        probe.finish(200, ReplySource.L2_HIT)
        probe.finish(300, ReplySource.L2_HIT)
        assert collector.completed == 1


class TestProbeCollector:
    def test_rate_gating(self):
        collector = ProbeCollector(3)
        got = [collector.maybe_attach(i, 0, 0, RequestType.READ, 0)
               for i in range(9)]
        attached = [p is not None for p in got]
        assert attached == [False, False, True] * 3
        assert collector.attached == 3

    def test_rate_below_one_rejected(self):
        with pytest.raises(ValueError):
            ProbeCollector(0)

    def test_classify(self):
        assert classify(RequestType.EXCLUSIVE, ReplySource.L2_HIT) == "upgrade"
        assert classify(RequestType.READ, ReplySource.L2_HIT) == "l2_hit"
        assert classify(RequestType.READ_EXCLUSIVE,
                        ReplySource.REMOTE_DIRTY) == "remote_dirty"

    def test_reset_zeroes_aggregates(self):
        collector = ProbeCollector(1)
        probe = collector.maybe_attach(1, 0, 0, RequestType.READ, 0)
        probe.stamp("fill", 50_000)
        probe.finish(50_000, ReplySource.L2_HIT)
        collector.reset()
        d = collector.as_dict()
        assert d["completed"] == 0
        assert d["classes"]["l2_hit"]["count"] == 0
        assert sum(d["classes"]["l2_hit"]["histogram"]["bins"]) == 0
        assert d["samples"] == []


class TestProbesEndToEnd:
    def test_hop_sum_invariant_and_counter_crosscheck(self):
        system = run_probed(rate=1)
        probes = system.probes.as_dict()
        assert probes["completed"] > 100

        # every retained sample: hop deltas partition the latency exactly
        for sample in probes["samples"]:
            stamps = sample["stamps"]
            assert stamps[0][0] == "issue"
            times = [t for _, t in stamps]
            assert times == sorted(times), f"non-monotone stamps: {stamps}"
            hop_sum = sum(t1 - t0 for t0, t1 in zip(times, times[1:]))
            assert hop_sum == times[-1] - times[0]

        # independent cross-check: CPU stall accounting vs probe means.
        # Counts differ only by warm-up-boundary straddlers (each CPU's
        # accounting resets at its own boundary, probes at the global
        # one); means agree tightly at rate 1 on in-order cores.
        counter = counter_latency_ns(system)
        for name, blk in counter.items():
            probe_blk = probes["by_source"][name]
            assert probe_blk["count"] == pytest.approx(blk["count"],
                                                       rel=0.05)
            assert probe_blk["mean_ns"] == pytest.approx(blk["mean_ns"],
                                                         rel=0.02)

    def test_histogram_mass_matches_counts(self):
        system = run_probed(rate=4, interval_ps=0)
        probes = system.probes.as_dict()
        for cls, blk in probes["classes"].items():
            assert sum(blk["histogram"]["bins"]) == blk["count"], cls
        total = sum(blk["count"] for blk in probes["classes"].values())
        assert total == probes["completed"]

    def test_mem_probes_note_page_hits(self):
        system = run_probed(rate=1, interval_ps=0)
        mem_samples = [s for s in system.probes.as_dict()["samples"]
                       if s["class"] == "local_mem"]
        assert mem_samples
        assert all("dram_page_hit" in s["notes"] for s in mem_samples)
        assert all(any(label == "mem_data" for label, _ in s["stamps"])
                   for s in mem_samples)


class TestIntervalSampler:
    def test_unit_deltas_and_reset_flag(self, sim):
        counters = {"x": 0}
        sampler = IntervalSampler(sim, 100, lambda: dict(counters),
                                  derive=lambda d, dt: {"rate": d["x"] / dt})
        sampler.start()

        def bump():
            counters["x"] += 10
            sim.schedule(40, bump)

        def reset_at_boundary():
            # mirrors PiranhaSystem.reset_module_stats: flush the partial
            # interval with pre-reset deltas, then re-baseline and flag
            sampler.flush()
            sampler.note_reset()

        sim.schedule(40, bump)
        sim.schedule(250, reset_at_boundary)
        sim.run(max_events=40)
        sampler.finalize()
        recs = sampler.intervals
        assert len(recs) >= 3
        assert all(r["t1_ps"] - r["t0_ps"] <= 100 for r in recs)
        assert all(r["deltas"]["x"] >= 0 for r in recs)
        # the series stays contiguous across the reset, and the interval
        # beginning at the reset instant carries the flag
        for prev, cur in zip(recs, recs[1:]):
            assert prev["t1_ps"] == cur["t0_ps"]
        flagged = [r for r in recs if r["reset"]]
        assert len(flagged) == 1
        assert flagged[0]["t0_ps"] == 250
        assert all("rate" in r["derived"] for r in recs if
                   r["t1_ps"] > r["t0_ps"])

    def test_tick_at_reset_anchor_emits_no_zero_width_record(self, sim):
        """A periodic tick landing exactly on a ``note_reset`` anchor (a
        sampling-window boundary at a snapshot/reset timestamp) must not
        emit a zero-width record, divide by a zero interval, or consume
        the pending reset flag."""
        import math

        counters = {"x": 0}
        sampler = IntervalSampler(sim, 100, lambda: dict(counters),
                                  derive=lambda d, dt: {"rate": d["x"] / dt})

        def reset_at_tick_time():
            counters["x"] += 7
            sampler.flush()
            sampler.note_reset()

        # scheduled before start() => fires before the t=100 tick (FIFO
        # within a timestamp), leaving the tick a zero-width window
        sim.schedule(100, reset_at_tick_time)
        sampler.start()

        def bump():
            counters["x"] += 3

        sim.schedule(150, bump)
        sim.run(until_ps=200)
        sampler.finalize()
        recs = sampler.intervals
        assert all(r["t1_ps"] > r["t0_ps"] for r in recs)
        assert all(math.isfinite(r["derived"]["rate"]) for r in recs)
        # the flush at the reset instant closed [0, 100]; the zero-width
        # tick was skipped without consuming the reset flag, which lands
        # on the first real post-reset interval
        assert (recs[0]["t0_ps"], recs[0]["t1_ps"]) == (0, 100)
        assert not recs[0]["reset"]
        flagged = [r for r in recs if r["reset"]]
        assert len(flagged) == 1
        assert flagged[0]["t0_ps"] == 100
        assert flagged[0]["deltas"]["x"] == 3

    def test_partial_interval_marking(self, sim):
        """Intervals whose width differs from the period — the flush
        before a mid-interval reset, the re-baselined interval after it,
        and the finalize() tail — carry ``partial``; full-period
        intervals do not."""
        counters = {"x": 0}
        sampler = IntervalSampler(sim, 100, lambda: dict(counters))
        sampler.start()

        def bump():
            counters["x"] += 1
            sim.schedule(30, bump)

        def mid_reset():
            sampler.flush()
            sampler.note_reset()

        sim.schedule(30, bump)
        sim.schedule(250, mid_reset)
        sim.run(until_ps=430)
        sampler.finalize()
        shape = [(r["t0_ps"], r["t1_ps"], r["reset"], r["partial"])
                 for r in sampler.intervals]
        assert shape == [
            (0, 100, False, False),
            (100, 200, False, False),
            (200, 250, False, True),    # flush before the reset
            (250, 300, True, True),     # re-baselined post-reset interval
            (300, 400, False, False),
            (400, 430, False, True),    # finalize() tail
        ]

    def test_interval_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            IntervalSampler(sim, 0, dict)
        with pytest.raises(ValueError):
            sim.schedule_every(0, lambda: True)

    def test_schedule_every_stops_on_false(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            return len(fired) < 3

        sim.schedule_every(50, tick)
        sim.run()
        assert fired == [50, 100, 150]

    def test_end_to_end_series(self):
        system = run_probed(rate=64, interval_ps=20_000_000)
        ts = system.sampler.as_dict()
        assert ts["count"] >= 2
        recs = ts["intervals"]
        assert [r["index"] for r in recs] == list(range(len(recs)))
        for prev, cur in zip(recs, recs[1:]):
            assert prev["t1_ps"] == cur["t0_ps"]
        assert sum(1 for r in recs if r["reset"]) == 1
        for r in recs:
            assert all(v >= 0 for v in r["deltas"].values())
            assert "tsrf_occupancy" in r["gauges"]
            assert 0.0 <= r["derived"]["l1_miss_rate"] <= 1.0
        # post-reset instructions in the series track the CPUs'
        # steady-state accounting; each CPU zeroes its own counter at its
        # *own* warm-up boundary (before the global reset the sampler
        # re-baselines at), so the series slightly undercounts
        reset_idx = next(i for i, r in enumerate(recs) if r["reset"])
        series_instr = sum(r["deltas"]["instructions"]
                           for r in recs[reset_idx:])
        cpu_instr = sum(cpu.instructions for cpu in system.all_cpus())
        assert 0 < series_instr <= cpu_instr
        assert series_instr >= 0.9 * cpu_instr


class TestSamplerCheckpointRestore:
    def _build(self, interval_ps=20_000_000):
        cfg = preset("P2")
        system = PiranhaSystem(cfg, num_nodes=1)
        system.enable_sampler(interval_ps)
        system.attach_workload(OltpWorkload(TINY_OLTP,
                                            cpus_per_node=cfg.cpus,
                                            num_nodes=1))
        return system

    def test_restore_mid_interval_no_double_count(self):
        """Snapshot taken mid-interval (between events), restored, run to
        completion: the interval series must be byte-identical to the
        uninterrupted run — no interval double-counted, dropped, or
        re-attributed across the restore."""
        from repro.checkpoint import restore_system, snapshot_bytes

        base = self._build()
        base.run_to_completion()
        baseline = base.sampler.as_dict()
        assert baseline["count"] >= 2

        system = self._build()
        system.start()
        # stop mid-interval, between events (run() parks now at until_ps)
        system.sim.run(until_ps=30_000_000)
        assert system.sim.now == 30_000_000
        payload = snapshot_bytes(system)
        restored = restore_system(payload)
        restored.run_to_completion()
        assert restored.sampler.as_dict() == baseline
        # the interval containing the warm-up reset is re-baselined
        # mid-interval, so it must be flagged partial (the
        # double-counting fix: its deltas span less than one period)
        flagged = [r for r in baseline["intervals"] if r["reset"]]
        assert len(flagged) == 1
        if flagged[0]["t1_ps"] - flagged[0]["t0_ps"] != 20_000_000:
            assert flagged[0]["partial"]


class TestMetricsExport:
    def _job(self, **kw):
        kw.setdefault("config", preset("P2"))
        return Job(factory=MigratoryFactory(TINY_MICRO),
                   units_attr="iterations", **kw)

    def test_simulate_attaches_valid_doc(self):
        result = simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                          units_attr="iterations", probe_rate=4,
                          sample_interval_ps=10_000_000)
        doc = result.extras["metrics"]
        assert validate_metrics(doc) == []
        assert doc["run"]["probe_rate"] == 4
        assert doc["timeseries"]["count"] >= 2
        csv = timeseries_csv(doc)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("index,t0_ps,t1_ps,reset")
        assert len(lines) == doc["timeseries"]["count"] + 1

    def test_doc_is_deterministic(self):
        docs = [
            json.dumps(simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                                units_attr="iterations", probe_rate=4,
                                sample_interval_ps=10_000_000
                                ).extras["metrics"], sort_keys=True)
            for _ in range(2)
        ]
        assert docs[0] == docs[1]

    def test_parallel_path_matches_serial(self):
        job = self._job(probe_rate=4, sample_interval_ps=10_000_000)
        serial = simulate(job.config, job.factory,
                          units_attr=job.units_attr,
                          probe_rate=job.probe_rate,
                          sample_interval_ps=job.sample_interval_ps)
        clear_cache()
        # two distinct jobs so run_jobs actually opens the pool
        other = self._job(probe_rate=4, sample_interval_ps=10_000_000,
                          config=dataclasses.replace(preset("P2"),
                                                     name="P2b"))
        results = run_jobs([job, other], jobs=2)
        assert (json.dumps(results[0].extras["metrics"], sort_keys=True)
                == json.dumps(serial.extras["metrics"], sort_keys=True))

    def test_cache_key_folds_observability_settings(self):
        plain = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                               units_attr="iterations")
        assert "metrics" not in plain.extras
        probed = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                                units_attr="iterations", probe_rate=4)
        assert "metrics" in probed.extras
        # payloads agree (observability never perturbs the measurement)
        assert probed.payload_tuple() == plain.payload_tuple()
        # a repeat probed call is served from cache, with the doc intact
        again = run_configured(preset("P2"), MigratoryFactory(TINY_MICRO),
                               units_attr="iterations", probe_rate=4)
        assert (json.dumps(again.extras["metrics"], sort_keys=True)
                == json.dumps(probed.extras["metrics"], sort_keys=True))

    def test_doc_without_sampler_has_null_timeseries(self):
        result = simulate(preset("P2"), MigratoryFactory(TINY_MICRO),
                          units_attr="iterations", probe_rate=4)
        doc = result.extras["metrics"]
        assert doc["timeseries"] is None
        assert validate_metrics(doc) == []


class TestCli:
    def test_run_metrics_flag_writes_valid_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "m.json"
        rc = main(["run", "--config", "P2", "--workload", "migratory",
                   "--scale", "0.2", "--metrics", str(out),
                   "--probe-rate", "8", "--sample-interval", "20"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_metrics(doc) == []
        assert doc["run"]["probe_rate"] == 8
        assert out.with_suffix(".csv").exists()
        assert "latency probes (1/8)" in capsys.readouterr().out

    def test_report_json(self, capsys):
        from repro.__main__ import main

        rc = main(["report", "--config", "P2", "--workload", "migratory",
                   "--scale", "0.2", "--json", "--probe-rate", "8"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_metrics(doc) == []
        assert doc["probes"]["completed"] > 0

    def test_report_json_implies_default_observability(self, capsys):
        # --json without explicit rates implies the default probe and
        # sampling settings, and the emitted doc records what ran.
        from repro.__main__ import main

        rc = main(["report", "--config", "P2", "--workload", "migratory",
                   "--scale", "0.2", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_metrics(doc) == []
        assert doc["run"]["probe_rate"] == 64
        assert doc["probes"] is not None
        assert doc["timeseries"] is not None

    def test_report_json_emits_every_probe_class(self, capsys):
        # Classes a tiny run never exercises (remote_dirty on one node)
        # must still appear with explicit zero counts — consumers index
        # the class table without guarding every key.
        from repro.__main__ import main
        from repro.core.probe import PROBE_CLASSES

        rc = main(["report", "--config", "P2", "--workload", "oltp",
                   "--scale", "0.1", "--json", "--probe-rate", "1"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        classes = doc["probes"]["classes"]
        assert set(classes) == set(PROBE_CLASSES)
        for cls, block in classes.items():
            assert block["count"] >= 0
        # engines always expose the S2 explicit-zero occupancy key
        for node in doc["counters"]:
            for eng in node["engines"].values():
                assert "tsrf_mean_occupancy" in eng

    def test_report_json_multinode_io_homed(self, capsys):
        from repro.__main__ import main

        rc = main(["report", "--config", "P2", "--workload", "oltp",
                   "--nodes", "2", "--scale", "0.1", "--json",
                   "--probe-rate", "4"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_metrics(doc) == []
        assert len(doc["counters"]) == 2


class TestClassifyEdgeCases:
    """Probe classification corners: issue-time type wins over the
    servicing source (upgrade-after-downgrade), and lines homed on an
    I/O node classify like any remote-homed line."""

    def test_upgrade_wins_over_every_source(self):
        # An EXCLUSIVE (upgrade) the bank downgraded to READ_EXCLUSIVE
        # after a conflict may complete from any source; issue-time
        # intent still classifies it as an upgrade attempt.
        for source in ReplySource:
            assert classify(RequestType.EXCLUSIVE, source) == "upgrade"

    def test_downgraded_upgrade_probe_counts_as_upgrade(self):
        collector = ProbeCollector(1)
        probe = collector.maybe_attach(3, 0, 0, RequestType.EXCLUSIVE, 0)
        probe.stamp("bank", 10_000)
        probe.stamp("mem_data", 90_000)
        # bank degraded the upgrade to a full fetch: data came from memory
        probe.finish(100_000, ReplySource.LOCAL_MEM)
        d = collector.as_dict()
        assert d["classes"]["upgrade"]["count"] == 1
        assert d["classes"]["local_mem"]["count"] == 0
        # the raw source bucketing is class-independent
        assert d["by_source"]["local_mem"]["count"] == 1
        assert d["samples"][0]["class"] == "upgrade"
        assert d["samples"][0]["source"] == "local_mem"

    def test_io_node_homed_line_classifies_remote_clean(self):
        from repro.core.messages import MemRequest
        from repro.core import AccessKind

        system = PiranhaSystem(preset("P2"), num_nodes=1, io_nodes=1)
        system.enable_probes(1)
        io_homed = 0x2000  # chunk 1 of the 8 KB interleave → I/O node
        assert system.address_map.home_of(io_homed) == 1
        req = MemRequest(cpu_id=0, kind=AccessKind.LOAD, addr=io_homed,
                         is_instr=False, done=lambda l, s: None, node=0)
        req.issue_time = 0
        system.nodes[0].issue_miss(req, RequestType.READ)
        system.sim.run()
        d = system.probes.as_dict()
        assert d["completed"] == 1
        assert d["classes"]["remote_clean"]["count"] == 1
        sample = d["samples"][0]
        assert sample["class"] == "remote_clean"
        # hop-sum invariant holds across the I/O-node protocol path too
        stamps = sample["stamps"]
        deltas = sum(t - prev for (_, prev), (_, t)
                     in zip(stamps, stamps[1:]))
        assert deltas == stamps[-1][1] - stamps[0][1]

    def test_io_node_homed_exclusive_still_upgrade(self):
        from repro.core.messages import MemRequest
        from repro.core import AccessKind

        system = PiranhaSystem(preset("P2"), num_nodes=1, io_nodes=1)
        system.enable_probes(1)
        req = MemRequest(cpu_id=0, kind=AccessKind.STORE, addr=0x2000,
                         is_instr=False, done=lambda l, s: None, node=0)
        req.issue_time = 0
        system.nodes[0].issue_miss(req, RequestType.EXCLUSIVE)
        system.sim.run()
        d = system.probes.as_dict()
        assert d["completed"] == 1
        assert d["classes"]["upgrade"]["count"] == 1
