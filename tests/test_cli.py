"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "P8" in out and "oltp" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "500 MHz" in out and "16 ns / 24 ns" in out

    def test_floorplan(self, capsys):
        assert main(["floorplan"]) == 0
        out = capsys.readouterr().out
        assert "CPU core" in out and "cores + caches" in out

    def test_run_small(self, capsys):
        assert main(["run", "--config", "P1", "--workload", "dss",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "L1 misses" in out

    def test_run_with_checker(self, capsys):
        assert main(["run", "--config", "P2", "--workload", "migratory",
                     "--scale", "0.2", "--check"]) == 0
        out = capsys.readouterr().out
        assert "audit: OK" in out
        assert "continuous audits" in out

    def test_run_with_check_and_trace(self, capsys):
        assert main(["run", "--config", "P2", "--nodes", "2",
                     "--workload", "migratory", "--scale", "0.2",
                     "--check", "--trace", "1024"]) == 0
        out = capsys.readouterr().out
        assert "audit: OK" in out

    def test_trace_subcommand_dumps_events(self, capsys):
        assert main(["trace", "--config", "P2", "--workload", "migratory",
                     "--scale", "0.2", "--last", "5"]) == 0
        out = capsys.readouterr().out
        assert "protocol trace" in out
        assert "event totals:" in out
        # at most `--last` event lines in the dump
        assert 0 < sum(1 for l in out.splitlines()
                       if l.startswith("#")) <= 5

    def test_trace_subcommand_line_filter(self, capsys):
        assert main(["trace", "--config", "P2", "--workload", "migratory",
                     "--scale", "0.2", "--node", "0", "--last", "3"]) == 0
        out = capsys.readouterr().out
        assert "[node=0]" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--config", "P99"])


class TestFuzzCli:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "7", "--ops", "200",
                     "--nodes", "2", "--check"]) == 0
        out = capsys.readouterr().out
        assert "clean:" in out
        assert "ref_reads=" in out

    def test_mutated_run_exits_one_with_trace(self, capsys):
        assert main(["fuzz", "--seed", "0", "--ops", "240", "--nodes", "2",
                     "--mutate", "stale_share/3", "--check",
                     "--trace"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION MemoryModelViolation:lost-update" in out
        assert "protocol trace tail:" in out

    def test_unknown_mutation_rejected(self, capsys):
        assert main(["fuzz", "--mutate", "nosuch"]) == 2
        assert "unknown mutation" in capsys.readouterr().err

    def test_shrink_writes_replayable_reproducer(self, tmp_path, capsys):
        out_path = str(tmp_path / "r.json")
        assert main(["fuzz", "--seed", "0", "--ops", "240", "--nodes", "2",
                     "--mutate", "stale_share/3", "--shrink", "150",
                     "--out", out_path]) == 1
        out = capsys.readouterr().out
        assert "minimal:" in out and "REPRODUCED" in out
        assert main(["fuzz", "--replay", out_path]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out
