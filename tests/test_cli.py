"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "P8" in out and "oltp" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "500 MHz" in out and "16 ns / 24 ns" in out

    def test_floorplan(self, capsys):
        assert main(["floorplan"]) == 0
        out = capsys.readouterr().out
        assert "CPU core" in out and "cores + caches" in out

    def test_run_small(self, capsys):
        assert main(["run", "--config", "P1", "--workload", "dss",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "L1 misses" in out

    def test_run_with_checker(self, capsys):
        assert main(["run", "--config", "P2", "--workload", "migratory",
                     "--scale", "0.2", "--check"]) == 0
        out = capsys.readouterr().out
        assert "audit: OK" in out
        assert "continuous audits" in out

    def test_run_with_check_and_trace(self, capsys):
        assert main(["run", "--config", "P2", "--nodes", "2",
                     "--workload", "migratory", "--scale", "0.2",
                     "--check", "--trace", "1024"]) == 0
        out = capsys.readouterr().out
        assert "audit: OK" in out

    def test_trace_subcommand_dumps_events(self, capsys):
        assert main(["trace", "--config", "P2", "--workload", "migratory",
                     "--scale", "0.2", "--last", "5"]) == 0
        out = capsys.readouterr().out
        assert "protocol trace" in out
        assert "event totals:" in out
        # at most `--last` event lines in the dump
        assert 0 < sum(1 for l in out.splitlines()
                       if l.startswith("#")) <= 5

    def test_trace_subcommand_line_filter(self, capsys):
        assert main(["trace", "--config", "P2", "--workload", "migratory",
                     "--scale", "0.2", "--node", "0", "--last", "3"]) == 0
        out = capsys.readouterr().out
        assert "[node=0]" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--config", "P99"])
