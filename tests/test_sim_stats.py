"""Unit tests for statistics primitives."""

import pytest

from repro.sim import Accumulator, Counter, Histogram, StatGroup, TimeWeighted


class TestCounter:
    def test_increment(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestAccumulator:
    def test_mean_min_max(self):
        a = Accumulator("lat")
        for v in (10, 20, 30):
            a.add(v)
        assert a.mean == 20
        assert a.min == 10
        assert a.max == 30
        assert a.count == 3

    def test_empty_mean(self):
        assert Accumulator("x").mean == 0.0

    def test_stdev(self):
        a = Accumulator("x")
        for v in (2, 4, 4, 4, 5, 5, 7, 9):
            a.add(v)
        assert a.stdev == pytest.approx(2.0)

    def test_stdev_single_sample(self):
        a = Accumulator("x")
        a.add(5)
        assert a.stdev == 0.0


class TestHistogram:
    def test_binning(self):
        h = Histogram("h", [10, 20, 30])
        for v in (5, 15, 25, 35, 7):
            h.add(v)
        assert h.samples == 5
        assert h.bins == [2, 1, 1, 1]

    def test_fraction_below(self):
        h = Histogram("h", [10, 20])
        for v in (5, 6, 15, 25):
            h.add(v)
        assert h.fraction_below(10) == 0.5

    def test_fraction_below_bad_edge_names_valid_edges(self):
        h = Histogram("h", [10, 20])
        h.add(5)
        with pytest.raises(ValueError) as exc:
            h.fraction_below(15)
        assert "not a bin edge" in str(exc.value)
        assert "[10, 20]" in str(exc.value)

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", [])


class TestTimeWeighted:
    def test_mean_level(self):
        tw = TimeWeighted("occ")
        tw.set(0, 1.0)
        tw.set(100, 3.0)
        # level 1 for 100ps, level 3 for 100ps
        assert tw.mean(200) == pytest.approx(2.0)

    def test_peak(self):
        tw = TimeWeighted("occ")
        tw.adjust(0, 5)
        tw.adjust(10, -2)
        assert tw.peak == 5
        assert tw.level == 3

    def test_mean_at_zero(self):
        assert TimeWeighted("x").mean(0) == 0.0

    def test_reset_anchors_window_and_keeps_level(self):
        tw = TimeWeighted("occ")
        tw.set(0, 10.0)          # warm-up: level 10 for 100 ps
        tw.reset(100)
        # level survives the reset (the queue didn't empty), but the
        # warm-up area is gone: mean over the new window is the level
        assert tw.level == 10.0
        tw.set(150, 0.0)         # 10 for 50 ps, then 0 for 50 ps
        assert tw.mean(200) == pytest.approx(5.0)

    def test_reset_clears_peak(self):
        tw = TimeWeighted("occ")
        tw.set(0, 8.0)
        tw.set(10, 2.0)
        assert tw.peak == 8.0
        tw.reset(20)
        assert tw.peak == 2.0    # peak restarts from the surviving level


class TestStatGroup:
    def test_get_or_create(self):
        g = StatGroup("mod")
        c1 = g.counter("hits")
        c2 = g.counter("hits")
        assert c1 is c2

    def test_type_conflict_rejected(self):
        g = StatGroup("mod")
        g.counter("x")
        with pytest.raises(TypeError):
            g.accumulator("x")

    def test_contains(self):
        g = StatGroup("mod")
        g.counter("a")
        assert "a" in g
        assert "b" not in g

    def test_as_dict(self):
        g = StatGroup("mod")
        g.counter("hits").inc(3)
        g.accumulator("lat").add(12.0)
        d = g.as_dict()
        assert d["hits"] == 3
        assert d["lat"]["count"] == 1

    def test_as_dict_includes_stdev(self):
        g = StatGroup("mod")
        acc = g.accumulator("lat")
        for v in (2, 4, 4, 4, 5, 5, 7, 9):
            acc.add(v)
        assert g.as_dict()["lat"]["stdev"] == pytest.approx(2.0)

    def test_reset_all(self):
        g = StatGroup("mod")
        g.counter("hits").inc(3)
        g.accumulator("lat").add(12.0)
        g.histogram("h", [1, 2]).add(0.5)
        g.reset_all()
        assert g.counter("hits").value == 0
        assert g.accumulator("lat").count == 0
        assert g.histogram("h", [1, 2]).samples == 0

    def test_reset_all_anchors_time_weighted(self):
        g = StatGroup("mod")
        tw = g.time_weighted("occ")
        tw.set(0, 6.0)
        g.reset_all(now_ps=300)
        # measurement restarts at 300 ps with the level intact: the
        # 0-300 ps warm-up area must not pollute the post-reset mean
        assert tw.level == 6.0
        assert tw.mean(400) == pytest.approx(6.0)


class TestHistogramPercentile:
    def test_percentile_basics(self):
        h = Histogram("h", [10, 20, 30])
        for v in (5, 15, 25, 28):
            h.add(v)
        assert h.percentile(0.25) == 10
        assert h.percentile(0.5) == 20
        assert h.percentile(1.0) == 30

    def test_percentile_empty(self):
        assert Histogram("h", [10]).percentile(0.5) == 0.0

    def test_percentile_overflow_is_inf(self):
        h = Histogram("h", [10])
        h.add(99)
        assert h.percentile(0.5) == float("inf")

    def test_percentile_zero_is_first_nonempty_edge(self):
        # The only sample sits in [10, 20), so p0 is that bin's upper
        # edge — not edges[0], which a need=0 cumulative check would
        # trivially satisfy at the (empty) underflow bin.
        h = Histogram("h", [10, 20])
        h.add(15)
        assert h.percentile(0.0) == 20

    def test_percentile_zero_underflow_sample(self):
        h = Histogram("h", [10, 20])
        h.add(5)
        assert h.percentile(0.0) == 10

    def test_percentile_zero_skips_empty_leading_bins(self):
        h = Histogram("h", [10, 20, 30])
        h.add(25)
        h.add(27)
        assert h.percentile(0.0) == 30

    def test_percentile_all_overflow(self):
        # Every sample above the last edge: every quantile, including
        # p0 and p100, falls in the overflow bin.
        h = Histogram("h", [10, 20])
        h.add(99)
        h.add(120)
        assert h.percentile(0.0) == float("inf")
        assert h.percentile(0.5) == float("inf")
        assert h.percentile(1.0) == float("inf")

    def test_percentile_p100_last_nonempty_edge(self):
        h = Histogram("h", [10, 20, 30])
        h.add(5)
        h.add(15)
        assert h.percentile(1.0) == 20

    def test_percentile_out_of_range_rejected(self):
        h = Histogram("h", [10])
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            h.percentile(-0.1)

    def test_reset_clears_bins_and_samples(self):
        h = Histogram("h", [10, 20])
        for v in (5, 15, 25):
            h.add(v)
        h.reset()
        assert h.samples == 0
        assert h.bins == [0, 0, 0]
        h.add(15)
        assert h.bins == [0, 1, 0]


class TestAsDictWindowed:
    def test_histogram_entry_carries_edges(self):
        g = StatGroup("mod")
        g.histogram("lat", [10, 20]).add(15)
        d = g.as_dict()
        assert d["lat"]["edges"] == [10, 20]
        assert d["lat"]["bins"] == [0, 1, 0]

    def test_time_weighted_mean_always_present(self):
        g = StatGroup("mod")
        tw = g.time_weighted("occ")
        tw.set(0, 2.0)
        tw.set(100, 4.0)
        # without a closing timestamp the mean is an explicit 0.0, never
        # an omitted key — consumers diff groups key-by-key
        plain = g.as_dict()
        assert plain["occ"]["mean"] == 0.0
        windowed = g.as_dict(now_ps=200)
        # 2.0 for 100 ps then 4.0 for 100 ps
        assert windowed["occ"]["mean"] == pytest.approx(3.0)
        assert windowed["occ"]["level"] == 4.0
