"""Unit tests for the optional TLB model (§2.1)."""

import dataclasses

import pytest

from repro.core import AccessKind, PiranhaSystem, preset
from repro.core.tlb import PAGE_BYTES, Tlb
from repro.workloads import OltpParams, OltpWorkload
from repro.workloads.base import WorkloadThread


class TestTlbStructure:
    def test_paper_geometry(self):
        tlb = Tlb(256, 4)
        assert tlb.num_sets == 64

    def test_hit_after_install(self):
        tlb = Tlb(16, 4)
        assert not tlb.lookup(0x0)       # cold miss installs
        assert tlb.lookup(0x100)         # same page
        assert tlb.lookup(PAGE_BYTES - 1)

    def test_distinct_pages_miss(self):
        tlb = Tlb(16, 4)
        tlb.lookup(0)
        assert not tlb.lookup(PAGE_BYTES * 4)  # other set or new page

    def test_lru_replacement(self):
        tlb = Tlb(8, 2)  # 4 sets
        set_stride = PAGE_BYTES * 4
        tlb.lookup(0)
        tlb.lookup(set_stride)
        tlb.lookup(0)                    # refresh page 0
        tlb.lookup(2 * set_stride)       # evicts set_stride's page
        assert tlb.lookup(0)
        assert not tlb.lookup(set_stride)

    def test_capacity_bounded(self):
        tlb = Tlb(256, 4)
        for page in range(1000):
            tlb.lookup(page * PAGE_BYTES)
        assert tlb.resident_pages() <= 256

    def test_flush(self):
        tlb = Tlb(16, 4)
        tlb.lookup(0)
        tlb.flush()
        assert not tlb.lookup(0)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Tlb(10, 4)


class TestCpuIntegration:
    def _system(self, refill_ns):
        cfg = preset("P1")
        cfg = dataclasses.replace(
            cfg, l1=dataclasses.replace(cfg.l1, tlb_refill_ns=refill_ns))
        return PiranhaSystem(cfg, num_nodes=1)

    def test_disabled_by_default(self):
        system = PiranhaSystem(preset("P1"), num_nodes=1)
        assert system.nodes[0].cpus[0].itlb is None

    def test_refill_cost_charged_as_busy(self):
        def run(refill):
            system = self._system(refill)
            cpu = system.nodes[0].cpus[0]
            # touch 64 distinct pages (all dTLB misses), data hits L1 after
            items = [(1, AccessKind.LOAD, p * PAGE_BYTES, True)
                     for p in range(64)]
            cpu.attach(WorkloadThread(iter(items)))
            cpu.start()
            system.sim.run()
            return cpu

        cold = run(0.0)
        warm = run(100.0)
        assert warm.busy_ps > cold.busy_ps
        assert warm.dtlb.misses == 64

    def test_oltp_tlb_sensitivity(self):
        """A large-footprint workload visibly slows with expensive TLB
        refills — the direction a TLB study must show."""
        params = OltpParams(transactions=10, warmup_transactions=15)

        def run(refill):
            system = self._system(refill)
            system.attach_workload(OltpWorkload(params, cpus_per_node=1))
            system.run_to_completion()
            return max(c.total_ps for c in system.all_cpus())

        assert run(60.0) > run(0.0)
