"""Checkpoint/restore subsystem tests.

Covers the PR's acceptance criteria:

* restore fidelity — P1 and P8 on OLTP and DSS produce byte-identical
  ``repro-metrics/1`` documents whether the measurement phase ran
  uninterrupted, cold-with-capture, or restored from the warm store, on
  both the serial and the ``jobs=N`` process-pool paths,
* the ``.ckpt`` file format round-trips, detects corruption, and
  refuses snapshots from a different schema / interpreter / library,
* resumable sweeps maintain their progress manifest and a re-run
  produces identical records,
* periodic checkpointing re-registers ``schedule_every`` tickers
  cleanly after restore (no duplicate tickers, no dropped intervals),
* fuzz violation bisection restores the last pre-violation snapshot and
  the violation recurs in the replayed window with the same signature.
"""

import dataclasses
import json

import pytest

from repro.checkpoint import (
    SCHEMA,
    CheckpointError,
    PeriodicCheckpointer,
    WARM_STORE,
    WarmCapture,
    build_manifest,
    checkpoint_info,
    load_checkpoint,
    restore_system,
    save_checkpoint,
    snapshot_bytes,
)
from repro.checkpoint.format import (
    decode,
    encode,
    python_version_tag,
    validate_manifest,
)
from repro.core import CoherenceChecker, PiranhaSystem, preset
from repro.harness import DssFactory, Job, OltpFactory, clear_cache, run_jobs
from repro.harness.runner import DISK_CACHE, build_system, simulate
from repro.harness.sweep import load_manifest, record_from_result, sweep_field
from repro.sim.engine import _PeriodicTick
from repro.workloads import DssParams, OltpParams

TINY_OLTP = OltpParams(transactions=6, warmup_transactions=8)
TINY_DSS = DssParams(rows=48)


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Every test gets an empty memo and a private cache directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    clear_cache()
    yield
    clear_cache()


def metrics_bytes(result) -> str:
    """The canonical serialisation of a run's metrics document."""
    return json.dumps(result.extras["metrics"], sort_keys=True)


def run_point(config_name, factory, *, warmup, check=False,
              units_attr="transactions"):
    return simulate(preset(config_name), factory, num_nodes=1,
                    units_attr=units_attr, check_coherence=check,
                    probe_rate=16, sample_interval_ps=int(10e6),
                    warmup=warmup)


# ---------------------------------------------------------------------------
# restore fidelity (serial path)


class TestRestoreFidelity:
    @pytest.mark.parametrize("config_name", ["P1", "P8"])
    @pytest.mark.parametrize("factory,units", [
        (OltpFactory(TINY_OLTP), "transactions"),
        (DssFactory(TINY_DSS), "rows"),
    ], ids=["oltp", "dss"])
    def test_metrics_doc_byte_identical(self, config_name, factory, units):
        """Uninterrupted, cold-with-capture and restored measurement runs
        must produce byte-identical metrics documents."""
        baseline = run_point(config_name, factory, warmup=False,
                             units_attr=units)
        warm_cold = run_point(config_name, factory, warmup=True,
                              units_attr=units)   # populates the store
        warm_restored = run_point(config_name, factory, warmup=True,
                                  units_attr=units)  # restores from it
        assert metrics_bytes(warm_cold) == metrics_bytes(baseline)
        assert metrics_bytes(warm_restored) == metrics_bytes(baseline)

    def test_restore_fidelity_with_sanitizer(self):
        """The full sanitizer state (directory mirrors, TSRF audit
        bookkeeping) survives the snapshot round-trip."""
        factory = OltpFactory(TINY_OLTP)
        baseline = run_point("P8", factory, warmup=False, check=True)
        run_point("P8", factory, warmup=True, check=True)
        restored = run_point("P8", factory, warmup=True, check=True)
        assert metrics_bytes(restored) == metrics_bytes(baseline)
        assert restored.extras.get("audit_continuous_runs") == \
            baseline.extras.get("audit_continuous_runs")

    def test_warm_snapshot_persisted_at_boundary(self):
        """The warm snapshot must be on disk before measurement finishes
        (a run killed mid-measurement still leaves it for --resume)."""
        factory = OltpFactory(TINY_OLTP)
        assert WARM_STORE.info()["entries"] == 0
        run_point("P1", factory, warmup=True)
        assert WARM_STORE.info()["entries"] == 1

    def test_result_cache_clear_keeps_warm_state(self):
        factory = OltpFactory(TINY_OLTP)
        run_point("P1", factory, warmup=True)
        DISK_CACHE.clear()
        assert WARM_STORE.info()["entries"] == 1


# ---------------------------------------------------------------------------
# restore fidelity (process-pool path)


class TestParallelWarmFidelity:
    def _jobs(self, warmup):
        return [
            Job(config=preset(name), factory=OltpFactory(TINY_OLTP),
                units_attr="transactions", warmup=warmup)
            for name in ("P1", "P8")
        ]

    def test_jobs_warm_records_identical(self):
        """jobs=2 with warmup=True — cold-capture pass and restored pass
        both match the uninterrupted serial records."""
        base = [record_from_result(r)
                for r in run_jobs(self._jobs(False), jobs=1)]
        clear_cache()
        DISK_CACHE.clear()  # force simulation; warm snapshots survive
        warm_cold = [record_from_result(r)
                     for r in run_jobs(self._jobs(True), jobs=2)]
        clear_cache()
        DISK_CACHE.clear()
        warm_restored = [record_from_result(r)
                         for r in run_jobs(self._jobs(True), jobs=2)]
        assert warm_cold == base
        assert warm_restored == base


# ---------------------------------------------------------------------------
# file format


class TestCheckpointFormat:
    def _manifest(self, payload):
        return build_manifest(payload, fingerprint="fp", config_digest="cd",
                              workload="oltp", nodes=1, sim_now=123)

    def test_round_trip(self):
        payload = b"x" * 4096
        manifest = self._manifest(payload)
        got_manifest, got_payload = decode(encode(manifest, payload))
        assert got_manifest == manifest
        assert got_payload == payload

    def test_deterministic_bytes(self):
        payload = b"y" * 128
        manifest = self._manifest(payload)
        assert encode(manifest, payload) == encode(manifest, payload)

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError, match="magic"):
            decode(b"NOTACKPT" + b"\x00" * 64)

    def test_payload_corruption_detected(self):
        payload = b"z" * 1024
        blob = bytearray(encode(self._manifest(payload), payload))
        blob[-1] ^= 0xFF
        with pytest.raises(CheckpointError):
            decode(bytes(blob))

    def test_schema_mismatch_rejected(self):
        manifest = self._manifest(b"")
        manifest["schema"] = SCHEMA + 1
        with pytest.raises(CheckpointError, match="schema"):
            validate_manifest(manifest)

    def test_python_mismatch_rejected(self):
        manifest = self._manifest(b"")
        manifest["python"] = "2.7"
        with pytest.raises(CheckpointError, match="Python"):
            validate_manifest(manifest)

    def test_fingerprint_enforced_unless_forced(self):
        manifest = self._manifest(b"")
        with pytest.raises(CheckpointError, match="fingerprint"):
            validate_manifest(manifest, fingerprint="other")
        validate_manifest(manifest, fingerprint="other", strict=False)
        assert manifest["python"] == python_version_tag()


# ---------------------------------------------------------------------------
# checkpoint files end to end


class TestCheckpointFiles:
    def test_save_restore_resumes_measurement(self, tmp_path):
        from repro.harness.metrics import metrics_doc

        factory = OltpFactory(TINY_OLTP)
        base_system, _ = build_system(preset("P1"), factory, probe_rate=16,
                                      sample_interval_ps=int(10e6))
        base_system.run_to_completion()
        baseline = json.dumps(
            metrics_doc(base_system, None, probe_rate=16,
                        sample_interval_ps=int(10e6)), sort_keys=True)

        system, _workload = build_system(
            preset("P1"), factory, probe_rate=16,
            sample_interval_ps=int(10e6))
        capture = WarmCapture(system, halt=True)
        system.start()
        system.sim.run()
        assert capture.captured

        path = str(tmp_path / "warm.ckpt")
        manifest = save_checkpoint(path, system, payload=capture.payload,
                                   sim_now=capture.sim_now, workload="oltp",
                                   extra={"probe_rate": 16})
        assert checkpoint_info(path) == manifest
        assert manifest["sim_now"] == capture.sim_now

        got_manifest, restored = load_checkpoint(path)
        assert got_manifest == manifest
        restored.run_to_completion()
        doc = metrics_doc(restored, None, probe_rate=16,
                          sample_interval_ps=int(10e6))
        assert json.dumps(doc, sort_keys=True) == baseline

    def test_config_digest_mismatch_refused(self, tmp_path):
        factory = OltpFactory(TINY_OLTP)
        system, _ = build_system(preset("P1"), factory)
        capture = WarmCapture(system, halt=True)
        system.start()
        system.sim.run()
        path = str(tmp_path / "warm.ckpt")
        save_checkpoint(path, system, payload=capture.payload,
                        sim_now=capture.sim_now, workload="oltp")
        with pytest.raises(CheckpointError, match="config digest"):
            load_checkpoint(path, expect_config=preset("P8"))


# ---------------------------------------------------------------------------
# resumable sweeps


class TestResumableSweep:
    VALUES = [256 << 10, 512 << 10]

    def _sweep(self, **kw):
        return sweep_field("P1", OltpFactory(TINY_OLTP), "l2.size_bytes",
                           self.VALUES, units_attr="transactions", **kw)

    def test_manifest_tracks_progress_and_rerun_identical(self):
        first = self._sweep(resume=True)
        from repro.harness.sweep import sweep_key

        key = sweep_key(preset("P1"), OltpFactory(TINY_OLTP),
                        "l2.size_bytes", self.VALUES, 1, "transactions",
                        False)
        manifest = load_manifest(key)
        assert manifest is not None
        assert manifest["done"] == list(range(len(self.VALUES)))
        again = self._sweep(resume=True)
        assert again == first

    def test_resume_after_partial_completion(self):
        """A sweep interrupted after point 0 finishes the rest on
        resume and the records match an uninterrupted sweep."""
        baseline = self._sweep()
        # interrupted run: only point 0 completed (simulated by running
        # a one-value sweep — same derived config, same cache keys)
        clear_cache()
        DISK_CACHE.clear()
        self._sweep_prefix()
        resumed = self._sweep(resume=True)
        assert resumed == baseline

    def _sweep_prefix(self):
        sweep_field("P1", OltpFactory(TINY_OLTP), "l2.size_bytes",
                    self.VALUES[:1], units_attr="transactions", warmup=True)

    def test_resume_matches_plain_sweep(self):
        plain = self._sweep()
        clear_cache()
        DISK_CACHE.clear()
        resumed = self._sweep(resume=True)
        assert resumed == plain


# ---------------------------------------------------------------------------
# periodic checkpointing and schedule_every restore (satellite: no
# duplicate tickers, no dropped intervals)


def _pending_tickers(system):
    return [h for _, _, h in system.sim._queue
            if isinstance(getattr(h, "fn", None), _PeriodicTick)
            or isinstance(h, _PeriodicTick)]


class TestPeriodicRestore:
    def _warm_system(self):
        checker = CoherenceChecker()
        system = PiranhaSystem(preset("P1"), num_nodes=1, checker=checker)
        factory = OltpFactory(TINY_OLTP)
        workload = factory(system.config, 1)
        system.attach_workload(workload)
        system.enable_sampler(int(5e6))
        return system

    def test_restored_ticker_not_duplicated(self):
        system = self._warm_system()
        capture = WarmCapture(system, halt=True)
        system.start()
        system.sim.run()
        restored = restore_system(capture.payload)
        before = len(_pending_tickers(restored))
        # run_to_completion on a restored system must not re-arm the
        # sampler ticker (start() is a no-op) — the pending tick came
        # back with the pickled queue
        restored.run_to_completion()
        assert before == 1
        assert restored.sampler._finalized

    def test_sampler_intervals_match_uninterrupted(self):
        uninterrupted = self._warm_system()
        uninterrupted.run_to_completion()
        expected = len(uninterrupted.sampler.intervals)

        system = self._warm_system()
        capture = WarmCapture(system, halt=True)
        system.start()
        system.sim.run()
        restored = restore_system(capture.payload)
        restored.run_to_completion()
        assert len(restored.sampler.intervals) == expected

    def test_periodic_checkpointer_keeps_last_k(self):
        system = self._warm_system()
        ckpt = PeriodicCheckpointer(system, int(2e6), keep=2)
        ckpt.start()
        system.run_to_completion()
        assert ckpt.captures > 2
        assert len(ckpt.snapshots) == 2
        now_ps, payload = ckpt.latest()
        assert now_ps <= system.sim.now
        replay = restore_system(payload)
        replay.run_to_completion()
        assert replay.sim.now == system.sim.now

    def test_snapshots_do_not_snowball(self):
        """Each rolling snapshot must not contain its predecessors."""
        system = self._warm_system()
        ckpt = PeriodicCheckpointer(system, int(2e6), keep=4)
        ckpt.start()
        system.run_to_completion()
        sizes = [len(p) for _, p in ckpt.snapshots]
        assert max(sizes) < 2 * min(sizes)


# ---------------------------------------------------------------------------
# fuzz violation bisection


class TestFuzzBisection:
    def test_violation_recurs_from_last_snapshot(self):
        from repro.fuzz import generate, params_for, run_fuzz_program

        prog = dataclasses.replace(
            generate(params_for(0, total_ops=240, nodes=2)),
            mutation="stale_share", mutation_period=3)
        verdict = run_fuzz_program(prog, check=True,
                                   checkpoint_every_ps=int(0.05e6))
        assert not verdict.ok
        assert verdict.bisect, "flight recorder captured no snapshot"
        assert verdict.bisect["recurred"]
        assert verdict.bisect["replay_signature"] == verdict.signature
        assert verdict.bisect["trace_window"]
        assert verdict.bisect["restored_from_ps"] > 0

    def test_no_checkpointing_means_no_bisect(self):
        from repro.fuzz import generate, params_for, run_fuzz_program

        prog = dataclasses.replace(
            generate(params_for(0, total_ops=240, nodes=2)),
            mutation="stale_share", mutation_period=3)
        verdict = run_fuzz_program(prog, check=True)
        assert not verdict.ok
        assert verdict.bisect == {}


# ---------------------------------------------------------------------------
# snapshot identity basics


class TestSnapshotBasics:
    def test_txn_counter_travels_with_snapshot(self):
        from repro.core import messages

        system, _ = build_system(preset("P1"), OltpFactory(TINY_OLTP))
        capture = WarmCapture(system, halt=True)
        system.start()
        system.sim.run()
        at_boundary = next(messages._txn_ids)
        restored = restore_system(capture.payload)
        assert next(messages._txn_ids) == at_boundary
        restored.run_to_completion()

    def test_snapshot_requires_positive_period(self):
        system, _ = build_system(preset("P1"), OltpFactory(TINY_OLTP))
        with pytest.raises(ValueError):
            PeriodicCheckpointer(system, 0)
        with pytest.raises(ValueError):
            PeriodicCheckpointer(system, 100, keep=0)

    def test_snapshot_bytes_stable_at_boundary(self):
        """Two snapshots of the same state are identical bytes (the
        checkpoint file is cacheable/diffable)."""
        system, _ = build_system(preset("P1"), OltpFactory(TINY_OLTP))
        capture = WarmCapture(system, halt=True)
        system.start()
        system.sim.run()
        assert snapshot_bytes(restore_system(capture.payload)) == \
            snapshot_bytes(restore_system(capture.payload))
